// Polynomial, interpolation, matrix and hyperinvertibility tests.
#include <gtest/gtest.h>

#include "field/primes.h"
#include "math/matrix.h"
#include "math/poly.h"

namespace pisces::math {
namespace {

class MathTest : public ::testing::Test {
 protected:
  MathTest() : ctx_(field::StandardPrimeBe(256)), rng_(11) {}
  field::FpCtx ctx_;
  Rng rng_;

  FpElem E(std::uint64_t v) { return ctx_.FromUint64(v); }
};

TEST_F(MathTest, EvalHorner) {
  // f(x) = 3 + 2x + x^2
  Poly f(std::vector<FpElem>{E(3), E(2), E(1)});
  EXPECT_TRUE(ctx_.Eq(f.Eval(ctx_, E(0)), E(3)));
  EXPECT_TRUE(ctx_.Eq(f.Eval(ctx_, E(1)), E(6)));
  EXPECT_TRUE(ctx_.Eq(f.Eval(ctx_, E(10)), E(123)));
}

TEST_F(MathTest, InterpolateRecoversPolynomial) {
  for (std::size_t deg : {0u, 1u, 3u, 7u, 15u}) {
    Poly f = Poly::Random(ctx_, rng_, deg);
    std::vector<FpElem> xs, ys;
    for (std::size_t i = 0; i <= deg; ++i) {
      xs.push_back(E(i + 1));
      ys.push_back(f.Eval(ctx_, xs.back()));
    }
    Poly g = Poly::Interpolate(ctx_, xs, ys);
    for (int probe = 0; probe < 5; ++probe) {
      FpElem x = ctx_.Random(rng_);
      EXPECT_TRUE(ctx_.Eq(f.Eval(ctx_, x), g.Eval(ctx_, x))) << deg;
    }
  }
}

TEST_F(MathTest, InterpolateDuplicateXThrows) {
  std::vector<FpElem> xs{E(1), E(1)};
  std::vector<FpElem> ys{E(2), E(3)};
  EXPECT_THROW(Poly::Interpolate(ctx_, xs, ys), Error);
}

TEST_F(MathTest, RandomWithConstraintsHitsConstraints) {
  std::vector<FpElem> xs{E(1), E(2), E(3)};
  std::vector<FpElem> ys{ctx_.Random(rng_), ctx_.Random(rng_), ctx_.Random(rng_)};
  for (int iter = 0; iter < 5; ++iter) {
    Poly f = Poly::RandomWithConstraints(ctx_, rng_, 8, xs, ys);
    EXPECT_LE(f.degree(), 8u);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      EXPECT_TRUE(ctx_.Eq(f.Eval(ctx_, xs[i]), ys[i]));
    }
  }
}

TEST_F(MathTest, RandomWithConstraintsIsActuallyRandom) {
  std::vector<FpElem> xs{E(1)};
  std::vector<FpElem> ys{E(5)};
  Poly f = Poly::RandomWithConstraints(ctx_, rng_, 4, xs, ys);
  Poly g = Poly::RandomWithConstraints(ctx_, rng_, 4, xs, ys);
  // Two independent draws agree at the constraint but (whp) nowhere else.
  EXPECT_TRUE(ctx_.Eq(f.Eval(ctx_, E(1)), g.Eval(ctx_, E(1))));
  EXPECT_FALSE(ctx_.Eq(f.Eval(ctx_, E(2)), g.Eval(ctx_, E(2))));
}

TEST_F(MathTest, VanishingPolyVanishes) {
  std::vector<FpElem> roots{E(3), E(5), E(9)};
  Poly w = Poly::Vanishing(ctx_, roots);
  EXPECT_EQ(w.degree(), 3u);
  for (const auto& r : roots) EXPECT_TRUE(ctx_.IsZero(w.Eval(ctx_, r)));
  EXPECT_FALSE(ctx_.IsZero(w.Eval(ctx_, E(4))));
}

TEST_F(MathTest, AddMulDegreeAndValues) {
  Poly f = Poly::Random(ctx_, rng_, 3);
  Poly g = Poly::Random(ctx_, rng_, 5);
  Poly sum = Poly::Add(ctx_, f, g);
  Poly prod = Poly::Mul(ctx_, f, g);
  FpElem x = ctx_.Random(rng_);
  EXPECT_TRUE(ctx_.Eq(sum.Eval(ctx_, x),
                      ctx_.Add(f.Eval(ctx_, x), g.Eval(ctx_, x))));
  EXPECT_TRUE(ctx_.Eq(prod.Eval(ctx_, x),
                      ctx_.Mul(f.Eval(ctx_, x), g.Eval(ctx_, x))));
  EXPECT_EQ(prod.degree(), 8u);
}

TEST_F(MathTest, LagrangeEvalMatchesInterpolation) {
  Poly f = Poly::Random(ctx_, rng_, 6);
  std::vector<FpElem> xs, ys;
  for (std::size_t i = 0; i < 7; ++i) {
    xs.push_back(E(i + 2));
    ys.push_back(f.Eval(ctx_, xs.back()));
  }
  FpElem x = E(100);
  EXPECT_TRUE(ctx_.Eq(LagrangeEval(ctx_, xs, ys, x), f.Eval(ctx_, x)));
}

TEST_F(MathTest, LagrangeCoeffsMultiMatchesSingle) {
  std::vector<FpElem> xs;
  for (std::size_t i = 0; i < 9; ++i) xs.push_back(E(i + 1));
  std::vector<FpElem> points{E(20), E(31), E(42)};
  auto multi = LagrangeCoeffsMulti(ctx_, xs, points);
  ASSERT_EQ(multi.size(), points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    auto single = LagrangeCoeffs(ctx_, xs, points[p]);
    ASSERT_EQ(multi[p].size(), single.size());
    for (std::size_t i = 0; i < single.size(); ++i) {
      EXPECT_TRUE(ctx_.Eq(multi[p][i], single[i]));
    }
  }
}

TEST_F(MathTest, PointsOnLowDegreeDetects) {
  Poly f = Poly::Random(ctx_, rng_, 4);
  std::vector<FpElem> xs, ys;
  for (std::size_t i = 0; i < 10; ++i) {
    xs.push_back(E(i + 1));
    ys.push_back(f.Eval(ctx_, xs.back()));
  }
  EXPECT_TRUE(PointsOnLowDegree(ctx_, xs, ys, 4));
  EXPECT_TRUE(PointsOnLowDegree(ctx_, xs, ys, 6));  // deg 4 is also deg <= 6
  ys[7] = ctx_.Add(ys[7], ctx_.One());
  EXPECT_FALSE(PointsOnLowDegree(ctx_, xs, ys, 4));
}

TEST_F(MathTest, PointCheckerAgreesWithPointsOnLowDegree) {
  Poly f = Poly::Random(ctx_, rng_, 5);
  std::vector<FpElem> xs, ys;
  for (std::size_t i = 0; i < 12; ++i) {
    xs.push_back(E(i + 3));
    ys.push_back(f.Eval(ctx_, xs.back()));
  }
  PointChecker checker(ctx_, xs, 5);
  EXPECT_TRUE(checker.Consistent(ys));
  FpElem probe = E(999);
  EXPECT_TRUE(ctx_.Eq(checker.EvalAt(probe, ys), f.Eval(ctx_, probe)));
  ys[11] = ctx_.Add(ys[11], ctx_.One());
  EXPECT_FALSE(checker.Consistent(ys));
}

TEST_F(MathTest, MatrixInverseRoundTrip) {
  const std::size_t n = 6;
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m.At(i, j) = ctx_.Random(rng_);
  }
  auto inv = m.Inverse(ctx_);
  ASSERT_TRUE(inv.has_value());  // random matrix is invertible whp
  Matrix prod = m.Mul(ctx_, *inv);
  EXPECT_TRUE(prod.Eq(ctx_, Matrix::Identity(ctx_, n)));
}

TEST_F(MathTest, SingularMatrixHasNoInverse) {
  Matrix m(2, 2);
  m.At(0, 0) = E(1);
  m.At(0, 1) = E(2);
  m.At(1, 0) = E(2);
  m.At(1, 1) = E(4);
  EXPECT_FALSE(m.Inverse(ctx_).has_value());
}

TEST_F(MathTest, VandermondeShape) {
  std::vector<FpElem> xs{E(2), E(3)};
  Matrix v = Vandermonde(ctx_, xs, 3);
  EXPECT_TRUE(ctx_.Eq(v.At(0, 0), E(1)));
  EXPECT_TRUE(ctx_.Eq(v.At(0, 1), E(2)));
  EXPECT_TRUE(ctx_.Eq(v.At(0, 2), E(4)));
  EXPECT_TRUE(ctx_.Eq(v.At(1, 2), E(9)));
}

TEST_F(MathTest, HyperInvertibleEverySquareSubmatrixInvertible) {
  const std::size_t n = 6;
  Matrix m = HyperInvertible(ctx_, n, n);
  // Exhaustively check all square submatrices of size 1..3 plus the full
  // matrix (checking all sizes is exponential; these cover the property).
  std::vector<std::size_t> idx{0, 1, 2, 3, 4, 5};
  for (std::size_t size : {1u, 2u, 3u}) {
    // a few deterministic index subsets per size
    for (std::size_t shift = 0; shift + size <= n; ++shift) {
      std::vector<std::size_t> rows(idx.begin() + shift,
                                    idx.begin() + shift + size);
      for (std::size_t cshift = 0; cshift + size <= n; ++cshift) {
        std::vector<std::size_t> cols(idx.begin() + cshift,
                                      idx.begin() + cshift + size);
        Matrix sub = m.Select(rows, cols);
        EXPECT_TRUE(sub.Inverse(ctx_).has_value())
            << "singular submatrix size=" << size << " r=" << shift
            << " c=" << cshift;
      }
    }
  }
  EXPECT_TRUE(m.Inverse(ctx_).has_value());
}

TEST_F(MathTest, HyperInvertibleActsAsInterpolationMap) {
  // M maps (f(1..n)) to (f(n+1..2n)) for deg <= n-1 polynomials.
  const std::size_t n = 5;
  Matrix m = HyperInvertible(ctx_, n, n);
  Poly f = Poly::Random(ctx_, rng_, n - 1);
  std::vector<FpElem> in(n), expected(n);
  for (std::size_t i = 0; i < n; ++i) {
    in[i] = f.Eval(ctx_, E(i + 1));
    expected[i] = f.Eval(ctx_, E(n + 1 + i));
  }
  auto out = m.MulVec(ctx_, in);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(ctx_.Eq(out[i], expected[i]));
  }
}

TEST_F(MathTest, CachedHyperInvertibleIsStable) {
  auto a = CachedHyperInvertible(ctx_, 4, 4);
  auto b = CachedHyperInvertible(ctx_, 4, 4);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_TRUE(a->Eq(ctx_, HyperInvertible(ctx_, 4, 4)));
}

}  // namespace
}  // namespace pisces::math
