// ShareStore: two-tier storage and secure disassociation.
#include <gtest/gtest.h>

#include "field/primes.h"
#include "pisces/share_store.h"

namespace pisces {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  StoreTest() : ctx_(field::StandardPrimeBe(256)), rng_(3), store_(ctx_) {}

  FileMeta PutFile(std::uint64_t id, std::size_t blocks) {
    FileMeta meta;
    meta.file_id = id;
    meta.raw_size = blocks * 10;
    meta.num_elems = blocks;
    meta.num_blocks = blocks;
    std::vector<field::FpElem> shares;
    for (std::size_t i = 0; i < blocks; ++i) shares.push_back(ctx_.Random(rng_));
    store_.Put(meta, std::move(shares));
    return meta;
  }

  field::FpCtx ctx_;
  Rng rng_;
  ShareStore store_;
};

TEST_F(StoreTest, PutLoadStashRoundTrip) {
  PutFile(1, 5);
  ASSERT_TRUE(store_.Has(1));
  auto& shares = store_.Load(1);
  ASSERT_EQ(shares.size(), 5u);
  field::FpElem changed = ctx_.Add(shares[0], ctx_.One());
  shares[0] = changed;
  store_.Stash(1);
  // The mutation survived the stash/load cycle (new secondary blob).
  EXPECT_TRUE(ctx_.Eq(store_.Load(1)[0], changed));
}

TEST_F(StoreTest, MetaAndIds) {
  PutFile(3, 2);
  PutFile(1, 4);
  auto ids = store_.FileIds();
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 3}));
  EXPECT_EQ(store_.MetaOf(3).num_blocks, 2u);
  EXPECT_THROW(store_.MetaOf(9), InvalidArgument);
}

TEST_F(StoreTest, SecondaryBytesTracksAtRestSize) {
  PutFile(1, 4);
  EXPECT_EQ(store_.SecondaryBytes(), 4 * ctx_.elem_bytes());
  store_.Load(1);
  store_.Stash(1);
  EXPECT_EQ(store_.SecondaryBytes(), 4 * ctx_.elem_bytes());
}

TEST_F(StoreTest, DeleteAndWipe) {
  PutFile(1, 2);
  PutFile(2, 2);
  store_.Delete(1);
  EXPECT_FALSE(store_.Has(1));
  EXPECT_TRUE(store_.Has(2));
  store_.WipeAll();
  EXPECT_FALSE(store_.Has(2));
  EXPECT_EQ(store_.SecondaryBytes(), 0u);
}

TEST_F(StoreTest, PutValidatesBlockCount) {
  FileMeta meta;
  meta.file_id = 9;
  meta.num_blocks = 3;
  std::vector<field::FpElem> two(2, ctx_.Zero());
  EXPECT_THROW(store_.Put(meta, std::move(two)), InvalidArgument);
}

}  // namespace
}  // namespace pisces
