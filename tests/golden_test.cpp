// Golden known-answer regression: the sharing and VSS pipelines must produce
// bit-identical output to the checked-in vectors under tests/data/ at every
// supported field size. Any numeric drift -- an RNG draw-order change, a
// Montgomery kernel bug, a serialization change -- shows up as a transcript
// mismatch here before it shows up as silent data corruption anywhere else.
//
// On an INTENTIONAL change, regenerate with scripts/gen_golden.sh and review
// the data-file diff. PISCES_GOLDEN_DIR is injected by the build.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "golden_common.h"
#include "pss/packed_shamir.h"

namespace pisces {
namespace {

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class GoldenTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GoldenTest, TranscriptMatchesCheckedInVectors) {
  const std::size_t bits = GetParam();
  const std::string path =
      std::string(PISCES_GOLDEN_DIR) + "/golden_" + std::to_string(bits) +
      ".txt";
  const std::string want = ReadFileOrEmpty(path);
  ASSERT_FALSE(want.empty()) << "missing golden vectors: " << path
                             << " (run scripts/gen_golden.sh)";
  const std::string got = golden::Transcript(bits);
  if (got != want) {
    // Point at the first diverging line instead of dumping two transcripts.
    std::istringstream a(want), b(got);
    std::string la, lb;
    std::size_t line = 1;
    while (std::getline(a, la) && std::getline(b, lb) && la == lb) ++line;
    FAIL() << "golden transcript mismatch at " << path << " line " << line
           << "\n  checked-in: " << la << "\n  recomputed: " << lb
           << "\nIf this change is intentional, regenerate with "
              "scripts/gen_golden.sh and review the diff.";
  }
}

// The vectors are not just stable but CORRECT: the checked-in shares
// reconstruct to the checked-in secrets through the current decoder.
TEST_P(GoldenTest, CheckedInSharesReconstructToSecrets) {
  const std::size_t bits = GetParam();
  auto ctx =
      std::make_shared<const field::FpCtx>(field::StandardPrimeBe(bits));
  pss::Params p;
  p.n = 13;
  p.t = 2;
  p.l = 3;
  p.r = 2;
  p.field_bits = bits;
  pss::PackedShamir shamir(ctx, p);

  const std::string path =
      std::string(PISCES_GOLDEN_DIR) + "/golden_" + std::to_string(bits) +
      ".txt";
  std::istringstream in(ReadFileOrEmpty(path));
  ASSERT_FALSE(in.str().empty()) << path;

  auto from_hex = [&](const std::string& hex) {
    Bytes bytes;
    for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
      bytes.push_back(static_cast<std::uint8_t>(
          std::stoul(hex.substr(i, 2), nullptr, 16)));
    }
    return ctx->FromBytes(bytes);
  };

  std::vector<field::FpElem> secrets, shares;
  std::string kind, hex;
  std::size_t idx;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    ls >> kind;
    if (kind == "secret" && ls >> idx >> hex) secrets.push_back(from_hex(hex));
    if (kind == "share" && ls >> idx >> hex) shares.push_back(from_hex(hex));
  }
  ASSERT_EQ(secrets.size(), p.l);
  ASSERT_EQ(shares.size(), p.n);

  std::vector<std::uint32_t> parties(p.n);
  for (std::uint32_t i = 0; i < p.n; ++i) parties[i] = i;
  const auto rec = shamir.ReconstructBlock(parties, shares);
  for (std::size_t j = 0; j < p.l; ++j) {
    EXPECT_TRUE(ctx->Eq(rec[j], secrets[j])) << "secret " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(FieldSizes, GoldenTest,
                         ::testing::Values(256, 512, 1024, 2048),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return "g" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace pisces
