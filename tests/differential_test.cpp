// Differential test: the packed/batched refresh pipeline against the HJKY'95
// baseline.
//
// Both schemes are seeded with the SAME secrets and run many consecutive
// refresh windows; after every window both must still reconstruct exactly the
// original secrets. The two implementations share nothing above the field
// layer (packed Shamir + hyperinvertible VSS vs. one-polynomial-per-secret
// zero-sharing), so agreement across 50 windows is strong evidence that
// neither refresh drifts the stored values. A second test repeats the run
// with injected share corruption and checks RobustReconstructBlock still
// recovers the identical blocks.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "field/primes.h"
#include "pisces/pisces.h"
#include "pss/baseline.h"
#include "pss/refresh.h"

namespace pisces::pss {
namespace {

using field::FpCtx;
using field::FpElem;

class DifferentialTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 9;
  static constexpr std::size_t kT = 2;
  static constexpr std::size_t kL = 2;
  static constexpr std::size_t kBlocks = 4;
  static constexpr std::size_t kWindows = 50;

  DifferentialTest() : ctx_(std::make_shared<const FpCtx>(
                           field::StandardPrimeBe(256))) {
    params_.n = kN;
    params_.t = kT;
    params_.l = kL;
    params_.r = 1;
    params_.field_bits = 256;
    params_.Validate();
    shamir_ = std::make_unique<PackedShamir>(ctx_, params_);
  }

  // One fixed set of secrets, drawn from a fixed seed, viewed two ways:
  // kBlocks blocks of l for the packed scheme, flat for the baseline.
  std::vector<std::vector<FpElem>> DrawBlocks(Rng& rng) const {
    std::vector<std::vector<FpElem>> blocks(kBlocks);
    for (auto& b : blocks) {
      for (std::size_t j = 0; j < kL; ++j) b.push_back(ctx_->Random(rng));
    }
    return blocks;
  }

  std::shared_ptr<const FpCtx> ctx_;
  Params params_;
  std::unique_ptr<PackedShamir> shamir_;
};

TEST_F(DifferentialTest, PackedAndBaselineAgreeAcrossFiftyWindows) {
  Rng secret_rng(0xD1FF);
  const auto blocks = DrawBlocks(secret_rng);
  std::vector<FpElem> flat;
  for (const auto& b : blocks) flat.insert(flat.end(), b.begin(), b.end());

  // Packed side: share blockwise, shares_by_party[i][b].
  Rng packed_rng(0xAB5EED);
  auto by_block = shamir_->ShareBlocks(blocks, packed_rng);
  std::vector<std::vector<FpElem>> packed_shares(
      kN, std::vector<FpElem>(kBlocks));
  for (std::size_t b = 0; b < kBlocks; ++b) {
    for (std::size_t i = 0; i < kN; ++i) packed_shares[i][b] = by_block[b][i];
  }

  // Baseline side: same secrets, one classic Shamir polynomial each.
  Rng base_rng(0xAB5EED);
  EvalPoints base_points(*ctx_, kN, 1);
  auto base_shares =
      BaselineShare(*ctx_, base_points, kN, kT, flat, base_rng);

  std::vector<std::uint32_t> all(kN);
  std::iota(all.begin(), all.end(), 0u);

  for (std::size_t w = 0; w < kWindows; ++w) {
    ReferenceRefresh(*shamir_, packed_shares, packed_rng);
    BaselineRefresh(*ctx_, base_points, kN, kT, base_shares, base_rng);

    // Reconstruct every block from the packed side...
    std::vector<std::vector<FpElem>> shares_by_block(
        kBlocks, std::vector<FpElem>(kN));
    for (std::size_t b = 0; b < kBlocks; ++b) {
      for (std::size_t i = 0; i < kN; ++i) {
        shares_by_block[b][i] = packed_shares[i][b];
      }
    }
    auto packed_out = shamir_->ReconstructBlocks(all, shares_by_block);

    // ...and every secret from the baseline, and compare both to the
    // original draw element by element.
    for (std::size_t b = 0; b < kBlocks; ++b) {
      for (std::size_t j = 0; j < kL; ++j) {
        const FpElem& expect = blocks[b][j];
        EXPECT_TRUE(ctx_->Eq(packed_out[b][j], expect))
            << "packed drifted at window " << w << " block " << b;
        FpElem base_out = BaselineReconstruct(*ctx_, base_points, kT,
                                              base_shares, b * kL + j);
        EXPECT_TRUE(ctx_->Eq(base_out, expect))
            << "baseline drifted at window " << w << " secret " << b * kL + j;
      }
    }
  }
}

TEST_F(DifferentialTest, RobustReconstructSurvivesCorruptionAfterRefresh) {
  Rng secret_rng(0xD1FF);  // same seed: identical secrets as the test above
  const auto blocks = DrawBlocks(secret_rng);

  Rng packed_rng(0xAB5EED);
  auto by_block = shamir_->ShareBlocks(blocks, packed_rng);
  std::vector<std::vector<FpElem>> packed_shares(
      kN, std::vector<FpElem>(kBlocks));
  for (std::size_t b = 0; b < kBlocks; ++b) {
    for (std::size_t i = 0; i < kN; ++i) packed_shares[i][b] = by_block[b][i];
  }

  std::vector<std::uint32_t> all(kN);
  std::iota(all.begin(), all.end(), 0u);

  Rng corrupt_rng(0xBADF00D);
  for (std::size_t w = 0; w < 10; ++w) {
    ReferenceRefresh(*shamir_, packed_shares, packed_rng);

    for (std::size_t b = 0; b < kBlocks; ++b) {
      std::vector<FpElem> ys(kN);
      for (std::size_t i = 0; i < kN; ++i) ys[i] = packed_shares[i][b];
      // Corrupt up to t distinct responders' shares; with all n responding
      // Berlekamp-Welch tolerates floor((n - d - 1) / 2) = t errors here.
      std::size_t c1 = corrupt_rng.Below(kN);
      std::size_t c2 = (c1 + 1 + corrupt_rng.Below(kN - 1)) % kN;
      ys[c1] = ctx_->Add(ys[c1], ctx_->One());
      ys[c2] = ctx_->Random(corrupt_rng);

      auto robust = shamir_->RobustReconstructBlock(all, ys);
      ASSERT_TRUE(robust.has_value()) << "window " << w << " block " << b;
      for (std::size_t j = 0; j < kL; ++j) {
        EXPECT_TRUE(ctx_->Eq((*robust)[j], blocks[b][j]))
            << "window " << w << " block " << b << " secret " << j;
      }
      // The plain (non-robust) path must also agree once the corrupted
      // shares are excluded from the responder set.
      std::vector<std::uint32_t> honest;
      std::vector<FpElem> honest_ys;
      for (std::size_t i = 0; i < kN; ++i) {
        if (i == c1 || i == c2) continue;
        honest.push_back(static_cast<std::uint32_t>(i));
        honest_ys.push_back(ys[i]);
      }
      auto plain = shamir_->ReconstructBlock(honest, honest_ys);
      for (std::size_t j = 0; j < kL; ++j) {
        EXPECT_TRUE(ctx_->Eq(plain[j], (*robust)[j]));
      }
    }
  }
}

// Serving-plane scheduler differential: refreshing a shard's F files in ONE
// batched launch must leave every host holding bytes IDENTICAL to F
// sequential per-file refreshes. The two schedules share the code path but
// not the interleaving: the batched plane launches every session before a
// single network pump, the sequential plane pumps per file. Byte identity
// holds because each host draws its zero-sharing randomness exactly once per
// session at launch, in file order, in both schedules.
TEST(ServingDifferential, BatchedRefreshMatchesSequentialPerFile) {
  auto build = [](std::size_t refresh_batch) {
    ServingConfig cfg;
    cfg.shards = 2;
    cfg.params.n = 8;
    cfg.params.t = 1;
    cfg.params.l = 2;
    cfg.params.r = 2;
    cfg.params.field_bits = 256;
    cfg.seed = 404;
    cfg.refresh_batch = refresh_batch;  // 0 = whole population per launch
    return std::make_unique<ServingPlane>(cfg);
  };
  auto batched = build(0);
  auto sequential = build(1);

  // Identical uploads in identical order -> identical pre-refresh state.
  Rng rng(55);
  const std::uint64_t sb = batched->OpenSession();
  const std::uint64_t ss = sequential->OpenSession();
  std::vector<Bytes> files;
  for (std::uint64_t id = 1; id <= 5; ++id) {
    files.push_back(rng.RandomBytes(512 + 64 * id));
    ASSERT_EQ(batched->Submit(sb, net::ServingOp::kUpload, id, files.back())
                  .status,
              net::ServingStatus::kOk);
    ASSERT_EQ(sequential->Submit(ss, net::ServingOp::kUpload, id, files.back())
                  .status,
              net::ServingStatus::kOk);
  }
  batched->Drain();
  sequential->Drain();

  ASSERT_TRUE(batched->BatchRefresh());
  ASSERT_TRUE(sequential->BatchRefresh());
  // The sequential plane really did launch once per file.
  EXPECT_EQ(batched->stats().refresh_batches, 2u);  // one per non-empty shard
  EXPECT_EQ(sequential->stats().refresh_batches, 5u);

  // Every host's post-refresh share vector must agree on bytes.
  for (std::uint32_t s = 0; s < 2; ++s) {
    for (std::uint32_t h = 0; h < 8; ++h) {
      ShareStore& a = batched->shard(s).host(h).store();
      ShareStore& b = sequential->shard(s).host(h).store();
      ASSERT_EQ(a.FileIds(), b.FileIds()) << "shard " << s << " host " << h;
      for (std::uint64_t id : a.FileIds()) {
        EXPECT_EQ(a.Load(id), b.Load(id))
            << "shard " << s << " host " << h << " file " << id;
        a.Stash(id);
        b.Stash(id);
      }
    }
  }

  // And both serve the original contents.
  for (std::uint64_t id = 1; id <= 5; ++id) {
    EXPECT_EQ(batched->shard(batched->ShardOf(id)).Download(pisces::ReadSpec::Classic(id)),
              files[id - 1]);
    EXPECT_EQ(sequential->shard(sequential->ShardOf(id)).Download(pisces::ReadSpec::Classic(id)),
              files[id - 1]);
  }
}

}  // namespace
}  // namespace pisces::pss
