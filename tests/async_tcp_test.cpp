// Async TCP transport tests: framing, supervision, backpressure, rejection.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "common/bytes.h"
#include "net/async_tcp.h"
#include "net/message.h"

namespace pisces::net {
namespace {

std::uint16_t BasePort() {
  // Offset +100 keeps clear of tcp_test.cpp's range in the same binary.
  return static_cast<std::uint16_t>(40100 + (::getpid() % 2000) * 10);
}

AsyncTcpOptions Opts(std::uint32_t id, std::uint16_t port) {
  AsyncTcpOptions o;
  o.id = id;
  o.listen_port = port;
  o.seed = 7 + id;
  o.heartbeat_interval_ms = 50;
  o.backoff_max_ms = 100;  // keep reconnect cycles fast under test
  return o;
}

Message Make(std::uint32_t to, Bytes payload) {
  Message m;
  m.to = to;
  m.type = MsgType::kDeal;
  m.payload = std::move(payload);
  return m;
}

template <typename Cond>
bool WaitFor(Cond cond, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!cond()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

TEST(AsyncTcp, RoundTripAndStats) {
  const std::uint16_t base = BasePort();
  AsyncTcpEndpoint a(Opts(1, base));
  AsyncTcpEndpoint b(Opts(2, static_cast<std::uint16_t>(base + 1)));
  a.AddPeer(2, static_cast<std::uint16_t>(base + 1));
  b.AddPeer(1, base);

  a.Send(Make(2, Bytes{1, 2, 3}));
  auto m = b.ReceiveWait(3000);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->from, 1u);  // Send stamps the sender id
  EXPECT_EQ(m->payload, (Bytes{1, 2, 3}));
  EXPECT_TRUE(WaitFor([&] { return a.StatsFor(2).frames_sent >= 1; }, 2000));
  EXPECT_GT(a.bytes_sent(), 0u);
  EXPECT_GT(a.StatsFor(2).bytes_sent, 0u);
  EXPECT_GE(b.StatsFor(1).frames_received, 1u);
}

TEST(AsyncTcp, PerLinkOrdering) {
  const std::uint16_t base = static_cast<std::uint16_t>(BasePort() + 2);
  AsyncTcpEndpoint a(Opts(1, base));
  AsyncTcpEndpoint b(Opts(2, static_cast<std::uint16_t>(base + 1)));
  a.AddPeer(2, static_cast<std::uint16_t>(base + 1));
  b.AddPeer(1, base);

  for (std::uint8_t i = 0; i < 100; ++i) a.Send(Make(2, Bytes{i}));
  for (std::uint8_t i = 0; i < 100; ++i) {
    auto m = b.ReceiveWait(3000);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->payload[0], i);  // per-link FIFO survives queueing
  }
}

TEST(AsyncTcp, SelfSendDeliversLocally) {
  const std::uint16_t base = static_cast<std::uint16_t>(BasePort() + 4);
  AsyncTcpEndpoint a(Opts(1, base));
  a.Send(Make(1, Bytes{9}));
  auto m = a.ReceiveWait(1000);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->from, 1u);
  EXPECT_EQ(m->payload[0], 9);
}

TEST(AsyncTcp, UnknownPeerThrows) {
  const std::uint16_t base = static_cast<std::uint16_t>(BasePort() + 5);
  AsyncTcpEndpoint a(Opts(1, base));
  EXPECT_THROW(a.Send(Make(99, Bytes{1})), Error);
}

TEST(AsyncTcp, QueuesUntilPeerAppears) {
  const std::uint16_t base = static_cast<std::uint16_t>(BasePort() + 6);
  AsyncTcpEndpoint a(Opts(1, base));
  const auto peer_port = static_cast<std::uint16_t>(base + 1);
  a.AddPeer(2, peer_port);
  a.Send(Make(2, Bytes{42}));  // nobody is listening yet; must not throw

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  AsyncTcpEndpoint b(Opts(2, peer_port));
  b.AddPeer(1, base);
  auto m = b.ReceiveWait(5000);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload[0], 42);
}

TEST(AsyncTcp, ReconnectsAfterPeerRestart) {
  const std::uint16_t base = static_cast<std::uint16_t>(BasePort() + 8);
  const auto peer_port = static_cast<std::uint16_t>(base + 1);
  AsyncTcpEndpoint a(Opts(1, base));
  a.AddPeer(2, peer_port);

  auto b = std::make_unique<AsyncTcpEndpoint>(Opts(2, peer_port));
  b->AddPeer(1, base);
  a.Send(Make(2, Bytes{1}));
  ASSERT_TRUE(b->ReceiveWait(3000).has_value());

  b.reset();  // peer "crashes"; a's connection dies mid-supervision
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  b = std::make_unique<AsyncTcpEndpoint>(Opts(2, peer_port));  // "restart"
  b->AddPeer(1, base);

  a.Send(Make(2, Bytes{2}));
  auto m = b->ReceiveWait(5000);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload[0], 2);
  EXPECT_GE(a.reconnects(), 1u);
  EXPECT_GE(a.StatsFor(2).reconnects, 1u);
}

TEST(AsyncTcp, PeerHealthTracksHeartbeats) {
  const std::uint16_t base = static_cast<std::uint16_t>(BasePort() + 10);
  AsyncTcpEndpoint a(Opts(1, base));
  auto b = std::make_unique<AsyncTcpEndpoint>(
      Opts(2, static_cast<std::uint16_t>(base + 1)));
  a.AddPeer(2, static_cast<std::uint16_t>(base + 1));
  b->AddPeer(1, base);

  EXPECT_FALSE(a.PeerHealthy(2));  // no traffic yet
  a.Send(Make(2, Bytes{1}));
  ASSERT_TRUE(b->ReceiveWait(3000).has_value());
  // b's heartbeats carry its id back to a over a's inbound connection.
  EXPECT_TRUE(WaitFor([&] { return a.PeerHealthy(2); }, 3000));

  b.reset();  // silence; the supervision window must eventually expire
  EXPECT_TRUE(WaitFor(
      [&] { return !a.PeerHealthy(2) && a.heartbeat_misses() >= 1; }, 5000));
}

TEST(AsyncTcp, BackpressureStallsThenDropsTowardDeadPeer) {
  const std::uint16_t base = static_cast<std::uint16_t>(BasePort() + 12);
  AsyncTcpOptions o = Opts(1, base);
  o.send_queue_cap_bytes = 4 * 1024;
  o.backpressure_stall_ms = 50;  // short stall budget under test
  AsyncTcpEndpoint a(o);
  a.AddPeer(2, static_cast<std::uint16_t>(base + 1));  // nobody listens

  const Bytes big(2 * 1024, 0xBB);
  for (int i = 0; i < 6; ++i) a.Send(Make(2, big));
  EXPECT_GE(a.backpressure_stalls(), 1u);
  EXPECT_GE(a.frames_dropped(), 1u);
  EXPECT_GE(a.StatsFor(2).frames_dropped, 1u);
}

TEST(AsyncTcp, OversizedLengthPrefixRejectedBeforeAllocation) {
  const std::uint16_t base = static_cast<std::uint16_t>(BasePort() + 14);
  AsyncTcpEndpoint a(Opts(1, base));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(base);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::uint8_t prefix[4];
  StoreLe32(0xFFFFFFFFu, prefix);  // claims a ~4 GiB frame
  ASSERT_EQ(::send(fd, prefix, sizeof(prefix), MSG_NOSIGNAL), 4);

  // The endpoint must reject the length before allocating and close the
  // connection: the raw socket observes EOF.
  char c;
  ssize_t r = -1;
  EXPECT_TRUE(WaitFor(
      [&] {
        r = ::recv(fd, &c, 1, MSG_DONTWAIT);
        return r == 0;
      },
      3000));
  EXPECT_EQ(r, 0);
  ::close(fd);

  // And the endpoint is still serving: a real message gets through.
  AsyncTcpEndpoint b(Opts(2, static_cast<std::uint16_t>(base + 1)));
  b.AddPeer(1, base);
  b.Send(Make(1, Bytes{7}));
  auto m = a.ReceiveWait(3000);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload[0], 7);
}

TEST(AsyncTcp, ReceiveWaitTimesOut) {
  const std::uint16_t base = static_cast<std::uint16_t>(BasePort() + 16);
  AsyncTcpEndpoint a(Opts(1, base));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(a.ReceiveWait(50).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(40));
  EXPECT_FALSE(a.Receive().has_value());
}

}  // namespace
}  // namespace pisces::net
