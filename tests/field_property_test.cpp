// Randomized property tests for the prime-field layer.
//
// field_test.cpp pins down the basic axioms with a handful of draws; this
// suite hammers the algebraic laws with many seeded random triples across all
// four standard prime sizes, cross-checks Montgomery-form arithmetic against
// plain integer arithmetic on small values (the round-trip through ToBytes /
// FromBytes is exactly the from/to-Montgomery conversion), and covers the
// BatchInv edge cases the interpolation hot path depends on: singleton spans,
// spans of identical values, and interleaving with scalar Inv.
//
// Everything is seeded -- a failure reproduces exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "field/fp.h"
#include "field/primes.h"

namespace pisces::field {
namespace {

class FieldPropertyTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  FieldPropertyTest()
      : ctx_(StandardPrimeBe(GetParam())), rng_(0x51EED ^ GetParam()) {}

  // Larger fields make Inv (a full modular exponentiation) expensive; scale
  // the iteration count down so the suite stays fast at g = 2048.
  int Iters() const { return GetParam() <= 512 ? 40 : 8; }

  FpCtx ctx_;
  Rng rng_;
};

TEST_P(FieldPropertyTest, AdditionGroupLaws) {
  for (int i = 0; i < Iters(); ++i) {
    FpElem a = ctx_.Random(rng_);
    FpElem b = ctx_.Random(rng_);
    FpElem c = ctx_.Random(rng_);
    EXPECT_TRUE(ctx_.Eq(ctx_.Add(a, b), ctx_.Add(b, a)));
    EXPECT_TRUE(ctx_.Eq(ctx_.Add(ctx_.Add(a, b), c),
                        ctx_.Add(a, ctx_.Add(b, c))));
    EXPECT_TRUE(ctx_.Eq(ctx_.Add(a, ctx_.Zero()), a));
    EXPECT_TRUE(ctx_.IsZero(ctx_.Add(a, ctx_.Neg(a))));
    // Sub is Add of the negation.
    EXPECT_TRUE(ctx_.Eq(ctx_.Sub(a, b), ctx_.Add(a, ctx_.Neg(b))));
    // Double negation.
    EXPECT_TRUE(ctx_.Eq(ctx_.Neg(ctx_.Neg(a)), a));
  }
}

TEST_P(FieldPropertyTest, MultiplicationLawsAndDistributivity) {
  for (int i = 0; i < Iters(); ++i) {
    FpElem a = ctx_.Random(rng_);
    FpElem b = ctx_.Random(rng_);
    FpElem c = ctx_.Random(rng_);
    EXPECT_TRUE(ctx_.Eq(ctx_.Mul(a, b), ctx_.Mul(b, a)));
    EXPECT_TRUE(ctx_.Eq(ctx_.Mul(ctx_.Mul(a, b), c),
                        ctx_.Mul(a, ctx_.Mul(b, c))));
    EXPECT_TRUE(ctx_.Eq(ctx_.Mul(a, ctx_.One()), a));
    EXPECT_TRUE(ctx_.IsZero(ctx_.Mul(a, ctx_.Zero())));
    // Left and right distributivity.
    EXPECT_TRUE(ctx_.Eq(ctx_.Mul(a, ctx_.Add(b, c)),
                        ctx_.Add(ctx_.Mul(a, b), ctx_.Mul(a, c))));
    EXPECT_TRUE(ctx_.Eq(ctx_.Mul(ctx_.Add(a, b), c),
                        ctx_.Add(ctx_.Mul(a, c), ctx_.Mul(b, c))));
    // Negation commutes with multiplication.
    EXPECT_TRUE(ctx_.Eq(ctx_.Mul(ctx_.Neg(a), b), ctx_.Neg(ctx_.Mul(a, b))));
    // Sqr is Mul with itself.
    EXPECT_TRUE(ctx_.Eq(ctx_.Sqr(a), ctx_.Mul(a, a)));
  }
}

TEST_P(FieldPropertyTest, FermatInverse) {
  for (int i = 0; i < Iters() / 4 + 1; ++i) {
    FpElem a = ctx_.RandomNonZero(rng_);
    FpElem inv = ctx_.Inv(a);
    // a * a^{-1} == 1 and the inverse of the inverse is a.
    EXPECT_TRUE(ctx_.Eq(ctx_.Mul(a, inv), ctx_.One()));
    EXPECT_TRUE(ctx_.Eq(ctx_.Inv(inv), a));
    // Inv agrees with explicit a^{p-2} via PowBytes: p-2 has the same byte
    // length as p because every standard prime ends in an odd byte > 2.
    Bytes e = ctx_.ModulusBytes();
    ASSERT_GE(e.back(), 3);
    e.back() -= 2;
    EXPECT_TRUE(ctx_.Eq(ctx_.PowBytes(a, e), inv));
    // Fermat's little theorem directly: a^{p-1} == 1.
    Bytes e1 = ctx_.ModulusBytes();
    e1.back() -= 1;
    EXPECT_TRUE(ctx_.Eq(ctx_.PowBytes(a, e1), ctx_.One()));
  }
  // (ab)^{-1} == a^{-1} b^{-1}.
  FpElem a = ctx_.RandomNonZero(rng_);
  FpElem b = ctx_.RandomNonZero(rng_);
  EXPECT_TRUE(ctx_.Eq(ctx_.Inv(ctx_.Mul(a, b)),
                      ctx_.Mul(ctx_.Inv(a), ctx_.Inv(b))));
  // 1^{-1} == 1.
  EXPECT_TRUE(ctx_.Eq(ctx_.Inv(ctx_.One()), ctx_.One()));
}

TEST_P(FieldPropertyTest, MontgomeryRoundTrip) {
  // ToBytes/FromBytes convert out of and back into Montgomery form; the
  // round trip must be exact in both directions for random elements.
  for (int i = 0; i < Iters(); ++i) {
    FpElem a = ctx_.Random(rng_);
    Bytes le = ctx_.ToBytes(a);
    ASSERT_EQ(le.size(), ctx_.elem_bytes());
    EXPECT_TRUE(ctx_.Eq(ctx_.FromBytes(le), a));
    // Serializing the round-tripped element reproduces the same bytes.
    EXPECT_EQ(ctx_.ToBytes(ctx_.FromBytes(le)), le);
  }
  // Montgomery-form arithmetic must agree with plain integer arithmetic on
  // values small enough to check directly.
  for (int i = 0; i < Iters(); ++i) {
    std::uint64_t x = rng_.Below(1u << 20);
    std::uint64_t y = rng_.Below(1u << 20);
    FpElem fx = ctx_.FromUint64(x);
    FpElem fy = ctx_.FromUint64(y);
    EXPECT_EQ(ctx_.ToUint64(ctx_.Add(fx, fy)), x + y);
    EXPECT_EQ(ctx_.ToUint64(ctx_.Mul(fx, fy)), x * y);
  }
  // Edge values: 0 and 1 survive the trip and map to the canonical elements.
  EXPECT_TRUE(ctx_.Eq(ctx_.FromBytes(ctx_.ToBytes(ctx_.Zero())), ctx_.Zero()));
  EXPECT_TRUE(ctx_.Eq(ctx_.FromBytes(ctx_.ToBytes(ctx_.One())), ctx_.One()));
  EXPECT_EQ(ctx_.ToUint64(ctx_.One()), 1u);
}

TEST_P(FieldPropertyTest, BatchInvSingleton) {
  FpElem a = ctx_.RandomNonZero(rng_);
  std::vector<FpElem> v{a};
  ctx_.BatchInv(v);
  EXPECT_TRUE(ctx_.Eq(v[0], ctx_.Inv(a)));
}

TEST_P(FieldPropertyTest, BatchInvAllSame) {
  // Every slot holds the same value; the running-product trick must still
  // produce the right inverse in every slot independently.
  FpElem a = ctx_.RandomNonZero(rng_);
  FpElem expected = ctx_.Inv(a);
  std::vector<FpElem> v(9, a);
  ctx_.BatchInv(v);
  for (const auto& e : v) EXPECT_TRUE(ctx_.Eq(e, expected));
}

TEST_P(FieldPropertyTest, BatchInvInterleavedWithInv) {
  // Alternate scalar Inv and BatchInv over the same draws: both paths must
  // agree element-wise, and calling one must not perturb the other.
  std::vector<FpElem> draws;
  for (int i = 0; i < 7; ++i) draws.push_back(ctx_.RandomNonZero(rng_));

  std::vector<FpElem> batch = draws;
  ctx_.BatchInv(batch);
  for (std::size_t i = 0; i < draws.size(); ++i) {
    FpElem scalar = ctx_.Inv(draws[i]);
    EXPECT_TRUE(ctx_.Eq(batch[i], scalar)) << i;
    // Invert again through the other path: must return to the original.
    std::vector<FpElem> again{scalar};
    ctx_.BatchInv(again);
    EXPECT_TRUE(ctx_.Eq(again[0], draws[i])) << i;
  }
}

TEST_P(FieldPropertyTest, BatchInvEmptyIsNoop) {
  std::vector<FpElem> empty;
  ctx_.BatchInv(empty);  // must not crash or touch anything
  EXPECT_TRUE(empty.empty());
}

INSTANTIATE_TEST_SUITE_P(AllFieldSizes, FieldPropertyTest,
                         ::testing::Values(256, 512, 1024, 2048));

}  // namespace
}  // namespace pisces::field
