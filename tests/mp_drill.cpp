// Crash-restart drill for the process-per-host deployment (ctest -L
// mp_drill).
//
// The acceptance drill of docs/deployment.md: launch n=10 real host
// processes, upload a file, then SIGKILL t=2 of them mid-refresh-window.
// The window must still complete (quorum refresh with wedge-abort + retry);
// the supervisor must restart the dead processes; the coordinator must put
// the fresh processes through the secure-reboot + share-recovery path; and
// the file must download bit-identically afterwards. A second, undisturbed
// window then proves the cluster is fully healed, not limping.
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "common/log.h"
#include "common/rng.h"
#include "field/primes.h"
#include "net/async_tcp.h"
#include "pisces/client.h"
#include "pisces/mp_config.h"
#include "pisces/mp_coordinator.h"
#include "pisces/mp_supervisor.h"

#ifndef PISCES_HOSTD_PATH
#error "build must define PISCES_HOSTD_PATH"
#endif

namespace {

using namespace pisces;

int Fail(const char* what) {
  std::printf("FAILED: %s\n", what);
  return 1;
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarn);

  MpConfig cfg;
  cfg.n = 10;
  cfg.t = 2;
  cfg.l = 2;
  cfg.r = 1;
  cfg.field_bits = 256;
  // Spread across runs to dodge TIME_WAIT collisions with other test
  // binaries (tests use 40000..60000; keep the 13-port block inside it).
  cfg.base_port = static_cast<std::uint16_t>(42000 + (::getpid() % 1500) * 12);
  cfg.seed = 20'170'605;  // ICDCS'17
  cfg.heartbeat_ms = 100;
  cfg.deadline_ms = 8000;
  cfg.restart_backoff_ms = 50;
  cfg.run_dir = "/tmp/pisces-mp-drill." + std::to_string(::getpid());
  cfg.hostd = PISCES_HOSTD_PATH;
  cfg.Validate();

  const std::string config_path = cfg.run_dir + "/deploy.conf";
  MpSupervisor supervisor(cfg, config_path);  // creates run_dir
  cfg.Save(config_path);
  supervisor.StartAll();

  net::AsyncTcpOptions hopts;
  hopts.id = net::kHypervisorId;
  hopts.listen_port = cfg.HypervisorPort();
  hopts.seed = cfg.seed ^ 0x51;
  hopts.heartbeat_interval_ms = cfg.heartbeat_ms;
  net::AsyncTcpEndpoint hyper_ep(hopts);
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    hyper_ep.AddPeer(i, cfg.HostPort(i));
  }
  hyper_ep.AddPeer(net::kClientId, cfg.ClientPort());

  MpCoordinator coord(cfg, hyper_ep);
  coord.SetTick([&supervisor] { supervisor.Poll(); });

  auto [client_cert, client_sk] = coord.IssueClient();
  if (!coord.BootAll()) return Fail("initial cluster bring-up");
  const auto quorum = std::max<std::size_t>(2 * cfg.t + 1,
                                            cfg.ToParams().degree() + 1);
  std::printf("drill: %u hosts booted (t=%u, quorum=%zu)\n", cfg.n, cfg.t,
              quorum);

  // Stock client over its own async endpoint.
  net::AsyncTcpOptions copts;
  copts.id = net::kClientId;
  copts.listen_port = cfg.ClientPort();
  copts.seed = cfg.seed ^ 0x52;
  copts.heartbeat_interval_ms = cfg.heartbeat_ms;
  net::AsyncTcpEndpoint client_ep(copts);
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    client_ep.AddPeer(i, cfg.HostPort(i));
  }
  client_ep.AddPeer(net::kHypervisorId, cfg.HypervisorPort());

  ClientConfig cc;
  cc.params = cfg.ToParams();
  cc.ctx = std::make_shared<const field::FpCtx>(
      field::StandardPrimeBe(cfg.field_bits));
  cc.encrypt_links = cfg.encrypt;
  Client client(cc, client_ep, crypto::SchnorrGroup::Default(), coord.ca_pk(),
                client_cert, client_sk);
  for (const auto& [id, cert] : coord.directory()) {
    if (id != net::kClientId) client.InstallPeerCert(cert);
  }

  auto pump_client = [&](auto done, int timeout_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    bool ok = done();
    while (!ok && std::chrono::steady_clock::now() < deadline) {
      auto msg = client_ep.ReceiveWait(50);
      if (msg) client.HandleMessage(*msg);
      supervisor.Poll();
      ok = done();
    }
    return ok;
  };

  Rng file_rng(cfg.seed + 55);
  const Bytes file = file_rng.RandomBytes(6 * 1024 + 123);
  const FileMeta meta = client.BeginUpload(1, file);
  if (!pump_client([&] { return client.UploadAcks(1) == cfg.n; }, 20'000)) {
    return Fail("upload not acknowledged by all hosts");
  }
  client.FinishUpload(1);
  coord.RegisterUpload(meta);
  std::printf("drill: uploaded %zu bytes\n", file.size());

  // THE DRILL: SIGKILL t hosts right after the refresh round is launched.
  const std::vector<std::uint32_t> victims = {1, 4};
  coord.SetMidWindowHook([&] {
    for (std::uint32_t v : victims) {
      if (!supervisor.Signal(v, SIGKILL)) {
        std::printf("drill: WARNING victim %u was not running\n", v);
      }
    }
    std::printf("drill: SIGKILLed hosts 1 and 4 mid-window\n");
  });

  const MpWindowReport report = coord.RunWindow();
  std::printf("drill: window done: refresh %s, %u attempts, %u reboots, "
              "%u deadline expiries, %u stale resyncs, %llu restarts\n",
              report.refresh_ok ? "ok" : "FAILED", report.refresh_attempts,
              report.hosts_rebooted, report.deadline_expiries,
              report.stale_resyncs,
              static_cast<unsigned long long>(supervisor.restarts()));
  if (!report.refresh_ok) return Fail("refresh did not complete");
  if (supervisor.restarts() < victims.size()) {
    return Fail("supervisor did not restart the killed hosts");
  }

  // Any victim not yet rebooted rides the announcement queue; flush it.
  coord.ProcessAnnouncements();
  for (std::uint32_t v : victims) {
    auto status = coord.QueryStatus(v);
    if (!status || !status->online) return Fail("victim not back online");
    bool has_file = false;
    for (std::uint64_t f : status->files) has_file |= (f == 1);
    if (!has_file) return Fail("victim lost the file's shares");
  }
  std::printf("drill: victims rebooted and recovered their shares\n");

  client.BeginDownload(pisces::ReadSpec::Classic(1));
  Bytes back;
  const bool got = pump_client(
      [&] {
        if (client.ResponsesFor(1) < cc.params.degree() + 1) {
          client.RetryDownload(pisces::ReadSpec::Classic(1));
          return false;
        }
        auto data = client.TryAssemble(1);
        if (!data) return false;
        back = *data;
        return true;
      },
      20'000);
  if (!got) return Fail("download did not assemble");
  if (back != file) return Fail("download is not bit-identical");
  std::printf("drill: download bit-identical after crash-restart\n");

  // A clean window proves the cluster healed, not merely survived.
  const MpWindowReport calm = coord.RunWindow();
  if (!calm.refresh_ok) return Fail("post-recovery window failed");
  if (calm.hosts_rebooted != 0) {
    return Fail("post-recovery window still rebooting hosts");
  }

  supervisor.StopAll();
  std::printf("PASS: crash-restart drill (n=%u, t=%u killed)\n", cfg.n,
              cfg.t);
  return 0;
}
