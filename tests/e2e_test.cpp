// Long-horizon and cross-field-size end-to-end sweeps.
#include <gtest/gtest.h>

#include "pisces/pisces.h"

namespace pisces {
namespace {

class FieldSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FieldSweepTest, FullLifecycleAtEveryFieldSize) {
  ClusterConfig cfg;
  cfg.params.n = 8;
  cfg.params.t = 1;
  cfg.params.l = 2;
  cfg.params.r = 2;
  cfg.params.field_bits = GetParam();
  cfg.seed = GetParam();
  Cluster cluster(cfg);
  Rng rng(GetParam());
  Bytes file = rng.RandomBytes(1024);
  cluster.Upload(1, file);
  ASSERT_TRUE(cluster.RunUpdateWindow().ok);
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(1)), file);
}

INSTANTIATE_TEST_SUITE_P(FieldSizes, FieldSweepTest,
                         ::testing::Values(256, 512, 1024, 2048));

TEST(LongHorizon, ManyWindowsWithChurnAndAdversary) {
  // Five proactive periods with a live rotating adversary, a mid-life second
  // upload, a delete, and downloads sprinkled between windows.
  ClusterConfig cfg;
  cfg.params.n = 10;
  cfg.params.t = 2;
  cfg.params.l = 2;
  cfg.params.r = 2;
  cfg.params.field_bits = 256;
  cfg.seed = 77;
  Cluster cluster(cfg);
  Adversary adv(cluster);
  Rng rng(7);
  Bytes f1 = rng.RandomBytes(3000);
  cluster.Upload(1, f1);

  Bytes f2;
  for (std::uint32_t w = 0; w < 5; ++w) {
    adv.Corrupt((2 * w) % 10);
    adv.Corrupt((2 * w + 1) % 10);
    if (w == 1) {
      f2 = rng.RandomBytes(500);
      cluster.Upload(2, f2);
    }
    if (w == 3) cluster.Delete(2);
    WindowReport report = cluster.RunUpdateWindow();
    ASSERT_TRUE(report.ok) << "window " << w;
    adv.ObserveWindow();
    EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(1)), f1) << "window " << w;
    if (w == 1 || w == 2) EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(2)), f2);
  }
  // The adversary touched every host at least once yet never breached.
  EXPECT_FALSE(adv.AttemptReconstruction(1).has_value());
  EXPECT_FALSE(adv.AttemptMixedReconstruction(1).has_value());
  // The deleted file is gone everywhere.
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_FALSE(cluster.host(i).store().Has(2));
  }
}

TEST(LongHorizon, StorageFootprintStaysBounded) {
  // Refresh must not grow the at-rest share footprint (old shares deleted).
  ClusterConfig cfg;
  cfg.params.n = 8;
  cfg.params.t = 1;
  cfg.params.l = 2;
  cfg.params.r = 2;
  cfg.params.field_bits = 256;
  cfg.seed = 31;
  Cluster cluster(cfg);
  Rng rng(1);
  cluster.Upload(1, rng.RandomBytes(2048));
  std::uint64_t bytes0 = cluster.host(0).store().SecondaryBytes();
  for (int w = 0; w < 3; ++w) ASSERT_TRUE(cluster.RunUpdateWindow().ok);
  EXPECT_EQ(cluster.host(0).store().SecondaryBytes(), bytes0);
}

}  // namespace
}  // namespace pisces
