// Full-system integration tests: upload, proactive update windows (refresh +
// scheduled reboots + recovery), download, multiple files, deployments,
// schedules, metrics.
#include <gtest/gtest.h>

#include "pisces/pisces.h"

namespace pisces {
namespace {

ClusterConfig SmallConfig() {
  ClusterConfig cfg;
  cfg.params.n = 8;
  cfg.params.t = 1;
  cfg.params.l = 2;
  cfg.params.r = 2;
  cfg.params.field_bits = 256;
  cfg.seed = 11;
  return cfg;
}

TEST(Cluster, UploadDownloadRoundTrip) {
  Cluster cluster(SmallConfig());
  Rng rng(1);
  Bytes file = rng.RandomBytes(2000);
  FileMeta meta = cluster.Upload(1, file);
  EXPECT_EQ(meta.raw_size, 2000u);
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(1)), file);
}

TEST(Cluster, UpdateWindowPreservesFileAndRotatesShares) {
  Cluster cluster(SmallConfig());
  Rng rng(2);
  Bytes file = rng.RandomBytes(3000);
  cluster.Upload(5, file);

  auto before = cluster.host(3).store().Load(5);
  cluster.host(3).store().Stash(5);

  WindowReport report = cluster.RunUpdateWindow();
  EXPECT_TRUE(report.ok) << (report.failures.empty() ? ""
                                                     : report.failures[0]);
  EXPECT_EQ(report.reboots, 8u);  // complete schedule
  EXPECT_GT(report.rerandomize_total.cpu_ns, 0u);
  EXPECT_GT(report.recover_total.bytes_sent, 0u);

  auto after = cluster.host(3).store().Load(5);
  cluster.host(3).store().Stash(5);
  EXPECT_NE(before, after);

  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(5)), file);
}

TEST(Cluster, MultipleWindowsMultipleFiles) {
  Cluster cluster(SmallConfig());
  Rng rng(3);
  Bytes f1 = rng.RandomBytes(1500);
  Bytes f2 = rng.RandomBytes(64);
  Bytes f3 = rng.RandomBytes(9000);
  cluster.Upload(1, f1);
  cluster.Upload(2, f2);
  cluster.Upload(3, f3);
  for (int w = 0; w < 3; ++w) {
    WindowReport report = cluster.RunUpdateWindow();
    ASSERT_TRUE(report.ok) << "window " << w;
  }
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(1)), f1);
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(2)), f2);
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(3)), f3);
}

TEST(Cluster, DeleteRemovesShares) {
  Cluster cluster(SmallConfig());
  Rng rng(4);
  Bytes file = rng.RandomBytes(100);
  cluster.Upload(9, file);
  cluster.Delete(9);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_FALSE(cluster.host(i).store().Has(9));
  }
  EXPECT_THROW(cluster.Download(pisces::ReadSpec::Classic(9)), Error);
}

TEST(Cluster, EmptyFileAndTinyFile) {
  Cluster cluster(SmallConfig());
  Bytes empty;
  cluster.Upload(1, empty);
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(1)), empty);
  Bytes one{0x42};
  cluster.Upload(2, one);
  cluster.RunUpdateWindow();
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(1)), empty);
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(2)), one);
}

TEST(Cluster, RandomizedScheduleWorks) {
  ClusterConfig cfg = SmallConfig();
  cfg.schedule = "randomized";
  Cluster cluster(cfg);
  Rng rng(6);
  Bytes file = rng.RandomBytes(500);
  cluster.Upload(1, file);
  WindowReport report = cluster.RunUpdateWindow();
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(1)), file);
}

TEST(Cluster, PlaintextLinksModeWorks) {
  ClusterConfig cfg = SmallConfig();
  cfg.encrypt_links = false;
  Cluster cluster(cfg);
  Rng rng(7);
  Bytes file = rng.RandomBytes(700);
  cluster.Upload(1, file);
  EXPECT_TRUE(cluster.RunUpdateWindow().ok);
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(1)), file);
}

TEST(Cluster, EncryptionActuallyHidesPayloads) {
  // With encrypted links, a network observer (the tap) never sees the raw
  // share bytes that the host stores.
  ClusterConfig cfg = SmallConfig();
  Cluster cluster(cfg);
  Rng rng(8);
  Bytes file = rng.RandomBytes(300);

  std::vector<Bytes> observed;
  cluster.net().SetTap([&](const net::Message& m) {
    if (m.type == net::MsgType::kSetShares) observed.push_back(m.payload);
  });
  cluster.Upload(1, file);
  cluster.net().SetTap(nullptr);
  ASSERT_EQ(observed.size(), 8u);

  auto& shares = cluster.host(0).store().Load(1);
  Bytes raw = field::SerializeElems(cluster.ctx(), shares);
  cluster.host(0).store().Stash(1);
  for (const Bytes& payload : observed) {
    // Raw share material must not appear inside any observed payload.
    auto it = std::search(payload.begin(), payload.end(), raw.begin(),
                          raw.begin() + 32);
    EXPECT_EQ(it, payload.end());
  }
}

TEST(Cluster, MetricsAccumulateAndReset) {
  Cluster cluster(SmallConfig());
  Rng rng(9);
  cluster.Upload(1, rng.RandomBytes(1000));
  cluster.ResetMetrics();
  cluster.RunUpdateWindow();
  HostMetrics total = cluster.TotalMetrics();
  EXPECT_GT(total.rerandomize.cpu_ns, 0u);
  EXPECT_GT(total.rerandomize.bytes_sent, 0u);
  EXPECT_GT(total.recover.cpu_ns, 0u);
  cluster.ResetMetrics();
  total = cluster.TotalMetrics();
  EXPECT_EQ(total.rerandomize.cpu_ns, 0u);
}

TEST(Cluster, RefreshOnlyKeepsFileIntact) {
  Cluster cluster(SmallConfig());
  Rng rng(10);
  Bytes file = rng.RandomBytes(2048);
  cluster.Upload(1, file);
  EXPECT_TRUE(cluster.RefreshAllFiles());
  EXPECT_TRUE(cluster.RefreshAllFiles());  // idempotent across epochs
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(1)), file);
}

TEST(Cluster, DeploymentMismatchRejected) {
  ClusterConfig cfg = SmallConfig();
  cfg.deployment = Deployment::MultiCloud(9, 3);  // n mismatch (8 != 9)
  EXPECT_THROW(Cluster cluster(cfg), InvalidArgument);
}

TEST(Cluster, MultiCloudDeploymentRuns) {
  ClusterConfig cfg = SmallConfig();
  cfg.deployment = Deployment::MultiCloud(8, 4);
  Cluster cluster(cfg);
  Rng rng(12);
  Bytes file = rng.RandomBytes(400);
  cluster.Upload(1, file);
  EXPECT_TRUE(cluster.RunUpdateWindow().ok);
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(1)), file);
  EXPECT_EQ(cluster.deployment().MinProvidersToBreach(cfg.params.t), 1u);
}

TEST(Cluster, DownloadSurvivesOfflineMinority) {
  // n=8, d=t+l=3: any d+1=4 responses suffice; take 3 hosts offline.
  Cluster cluster(SmallConfig());
  Rng rng(13);
  Bytes file = rng.RandomBytes(800);
  cluster.Upload(1, file);
  cluster.net().SetOffline(2, true);
  cluster.net().SetOffline(5, true);
  cluster.net().SetOffline(7, true);
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(1)), file);
}

TEST(Cluster, DownloadFailsBelowThreshold) {
  Cluster cluster(SmallConfig());
  Rng rng(14);
  cluster.Upload(1, rng.RandomBytes(100));
  for (std::uint32_t i = 0; i < 5; ++i) cluster.net().SetOffline(i, true);
  // Only 3 hosts respond < d+1 = 4.
  EXPECT_THROW(cluster.Download(pisces::ReadSpec::Classic(1)), Error);
}

TEST(Cluster, WorkerPoolProducesSameResults) {
  ClusterConfig cfg = SmallConfig();
  cfg.params.b = 3;
  Cluster cluster(cfg);
  Rng rng(15);
  Bytes file = rng.RandomBytes(1200);
  cluster.Upload(1, file);
  EXPECT_TRUE(cluster.RunUpdateWindow().ok);
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(1)), file);
}

TEST(Cluster, HostCertsRotateOnReboot) {
  Cluster cluster(SmallConfig());
  std::uint32_t epoch_before = cluster.host(0).epoch();
  cluster.RunUpdateWindow();
  EXPECT_GT(cluster.host(0).epoch(), epoch_before);
}

}  // namespace
}  // namespace pisces
