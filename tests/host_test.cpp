// Direct host state-machine tests: boot/shutdown semantics, cert handling,
// duplicate and out-of-order protocol messages, session lifecycle -- driven
// through a hand-built SimNet without the full Cluster facade.
#include <gtest/gtest.h>

#include <memory>

#include "field/primes.h"
#include "pisces/host.h"

namespace pisces {
namespace {

// Collects everything addressed to an endpoint (plays the hypervisor).
class Collector : public net::MessageHandler {
 public:
  void HandleMessage(const net::Message& msg) override {
    messages.push_back(msg);
  }
  std::vector<net::Message> messages;
};

class HostHarness {
 public:
  HostHarness() : rng_(71), ca_(crypto::SchnorrGroup::Default(), rng_) {
    params_.n = 5;
    params_.t = 1;
    params_.l = 1;
    params_.r = 1;
    params_.field_bits = 256;
    ctx_ = std::make_shared<const field::FpCtx>(field::StandardPrimeBe(256));
    for (std::uint32_t i = 0; i < params_.n; ++i) {
      endpoints_.push_back(net_.AddEndpoint(i));
      HostConfig hc;
      hc.id = i;
      hc.params = params_;
      hc.ctx = ctx_;
      hc.encrypt_links = false;  // these tests poke at plaintext protocol
      hosts_.push_back(std::make_unique<Host>(
          hc, *endpoints_.back(), crypto::SchnorrGroup::Default(),
          ca_.public_key()));
      sync_.Register(i, endpoints_.back(), hosts_.back().get());
      peers_.push_back(i);
    }
    hyper_ep_ = net_.AddEndpoint(net::kHypervisorId);
    sync_.Register(net::kHypervisorId, hyper_ep_, &collector_);
    for (std::uint32_t i = 0; i < params_.n; ++i) BootHost(i);
    sync_.RunToQuiescence();
  }

  void BootHost(std::uint32_t id) {
    ++epoch_;
    auto [cert, sk] = ca_.IssueHostKey(id, epoch_, rng_);
    certs_[id] = cert;
    net_.SetOffline(id, false);
    hosts_[id]->Boot(epoch_, cert, std::move(sk), peers_);
    for (const auto& [peer, c] : certs_) {
      if (peer != id) hosts_[id]->InstallPeerCert(c);
    }
  }

  void InstallFile(std::uint64_t file_id, std::size_t blocks) {
    Rng rng(9);
    pss::PackedShamir shamir(ctx_, params_);
    FileMeta meta;
    meta.file_id = file_id;
    meta.raw_size = blocks;
    meta.num_elems = blocks;
    meta.num_blocks = blocks;
    std::vector<std::vector<field::FpElem>> per_host(
        params_.n, std::vector<field::FpElem>(blocks));
    for (std::size_t b = 0; b < blocks; ++b) {
      std::vector<field::FpElem> secrets{ctx_->Random(rng)};
      auto shares = shamir.ShareBlock(secrets, rng);
      for (std::size_t i = 0; i < params_.n; ++i) per_host[i][b] = shares[i];
    }
    for (std::size_t i = 0; i < params_.n; ++i) {
      hosts_[i]->store().Put(meta, std::move(per_host[i]));
    }
  }

  void StartRefresh(std::uint64_t file_id, std::uint32_t epoch) {
    for (std::uint32_t i = 0; i < params_.n; ++i) {
      net::Message m;
      m.from = net::kHypervisorId;
      m.to = i;
      m.type = net::MsgType::kStartRefresh;
      m.file_id = file_id;
      m.epoch = epoch;
      hyper_ep_->Send(std::move(m));
    }
  }

  std::size_t DonesAtHypervisor() {
    std::size_t count = 0;
    for (const auto& m : collector_.messages) {
      if (m.type == net::MsgType::kPhaseDone && !m.payload.empty() &&
          m.payload[0] == 1) {
        ++count;
      }
    }
    collector_.messages.clear();
    return count;
  }

  pss::Params params_;
  std::shared_ptr<const field::FpCtx> ctx_;
  Rng rng_;
  crypto::CertAuthority ca_;
  net::SimNet net_;
  net::SyncNetwork sync_{net_};
  std::vector<net::SimEndpoint*> endpoints_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::uint32_t> peers_;
  net::SimEndpoint* hyper_ep_ = nullptr;
  Collector collector_;
  std::map<std::uint32_t, crypto::HostCert> certs_;
  std::uint32_t epoch_ = 0;
};

TEST(HostDirect, RefreshCompletesAndReports) {
  HostHarness h;
  h.InstallFile(1, 3);
  h.StartRefresh(1, 50);
  h.sync_.RunToQuiescence();
  EXPECT_EQ(h.DonesAtHypervisor(), h.params_.n);
  for (auto& host : h.hosts_) EXPECT_FALSE(host->HasActiveSessions());
}

TEST(HostDirect, OfflineHostIgnoresMessages) {
  HostHarness h;
  h.InstallFile(1, 2);
  h.hosts_[2]->Shutdown();
  EXPECT_FALSE(h.hosts_[2]->online());
  net::Message m;
  m.from = net::kHypervisorId;
  m.to = 2;
  m.type = net::MsgType::kStartRefresh;
  m.file_id = 1;
  m.epoch = 60;
  h.hosts_[2]->HandleMessage(m);  // delivered directly, host offline
  EXPECT_FALSE(h.hosts_[2]->HasActiveSessions());
}

TEST(HostDirect, ShutdownWipesEverything) {
  HostHarness h;
  h.InstallFile(1, 2);
  EXPECT_TRUE(h.hosts_[0]->store().Has(1));
  h.hosts_[0]->Shutdown();
  EXPECT_FALSE(h.hosts_[0]->store().Has(1));
  EXPECT_EQ(h.hosts_[0]->store().SecondaryBytes(), 0u);
}

TEST(HostDirect, BootRejectsForeignCert) {
  HostHarness h;
  Rng rng(5);
  auto [cert, sk] = h.ca_.IssueHostKey(/*host_id=*/3, 9, rng);
  // Booting host 0 with host 3's cert must fail.
  EXPECT_THROW(h.hosts_[0]->Boot(9, cert, sk, h.peers_), InvalidArgument);
}

TEST(HostDirect, StaleCertDoesNotDowngrade) {
  HostHarness h;
  Rng rng(6);
  auto [old_cert, sk1] = h.ca_.IssueHostKey(1, 1, rng);
  auto [new_cert, sk2] = h.ca_.IssueHostKey(1, 5, rng);
  h.hosts_[0]->InstallPeerCert(new_cert);
  h.hosts_[0]->InstallPeerCert(old_cert);  // ignored: older epoch
  // No crash and the host still operates; full behaviour covered by cluster
  // tests -- here we only pin the no-downgrade rule via no-throw.
  SUCCEED();
}

TEST(HostDirect, DuplicateDealsAreIdempotent) {
  HostHarness h;
  h.InstallFile(1, 2);
  // Capture one deal in flight and replay it after delivery.
  std::optional<net::Message> captured;
  h.net_.SetTap([&](const net::Message& m) {
    if (!captured && m.type == net::MsgType::kDeal && m.to == 4) captured = m;
  });
  h.StartRefresh(1, 70);
  h.sync_.RunToQuiescence();
  h.net_.SetTap(nullptr);
  ASSERT_TRUE(captured.has_value());
  EXPECT_EQ(h.DonesAtHypervisor(), h.params_.n);
  // Replaying the deal after the session completed: buffered as pending (the
  // session is gone), then discarded on the next session's replay sweep.
  h.hosts_[4]->HandleMessage(*captured);
  EXPECT_FALSE(h.hosts_[4]->HasActiveSessions());
  // A fresh refresh still works.
  h.StartRefresh(1, 71);
  h.sync_.RunToQuiescence();
  EXPECT_EQ(h.DonesAtHypervisor(), h.params_.n);
}

TEST(HostDirect, RefreshForUnknownFileReportsDone) {
  HostHarness h;  // no file installed
  h.StartRefresh(99, 80);
  h.sync_.RunToQuiescence();
  EXPECT_EQ(h.DonesAtHypervisor(), h.params_.n);
}

TEST(HostDirect, MetricsBucketsFill) {
  HostHarness h;
  h.InstallFile(1, 4);
  h.StartRefresh(1, 90);
  h.sync_.RunToQuiescence();
  const HostMetrics& m = h.hosts_[0]->metrics();
  EXPECT_GT(m.rerandomize.cpu_ns, 0u);
  EXPECT_GT(m.rerandomize.bytes_sent, 0u);
  EXPECT_GT(m.rerandomize.msgs_sent, 0u);
  EXPECT_EQ(m.serve.msgs_sent, 0u);  // no client traffic in this test
}

}  // namespace
}  // namespace pisces
