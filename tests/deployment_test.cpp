// Deployment planning tests: the paper's three use cases (Figures 1-3) and
// their confidentiality analysis.
#include <gtest/gtest.h>

#include "pisces/deployment.h"

namespace pisces {
namespace {

TEST(Deployment, SingleCloud) {
  Deployment d = Deployment::SingleCloud(30);
  EXPECT_EQ(d.providers, 1u);
  EXPECT_EQ(d.SharesAt(0), 30u);
  // One compromised provider exposes everything: breach for any t < n.
  std::vector<std::uint32_t> coalition{0};
  EXPECT_TRUE(d.CoalitionBreaches(coalition, 9));
  EXPECT_EQ(d.MinProvidersToBreach(9), 1u);
}

TEST(Deployment, MultiCloudEvenSplit) {
  Deployment d = Deployment::MultiCloud(30, 5);
  EXPECT_EQ(d.providers, 5u);
  for (std::uint32_t p = 0; p < 5; ++p) EXPECT_EQ(d.SharesAt(p), 6u);
  // t = 9: one provider (6 shares) is not enough, two (12) are.
  EXPECT_FALSE(d.CoalitionBreaches(std::vector<std::uint32_t>{2}, 9));
  EXPECT_TRUE(d.CoalitionBreaches(std::vector<std::uint32_t>{2, 4}, 9));
  EXPECT_EQ(d.MinProvidersToBreach(9), 2u);
}

TEST(Deployment, MultiCloudUnevenRemainder) {
  Deployment d = Deployment::MultiCloud(10, 3);
  EXPECT_EQ(d.SharesAt(0) + d.SharesAt(1) + d.SharesAt(2), 10u);
  // Round-robin keeps the imbalance at most 1.
  for (std::uint32_t p = 0; p < 3; ++p) {
    EXPECT_GE(d.SharesAt(p), 3u);
    EXPECT_LE(d.SharesAt(p), 4u);
  }
}

TEST(Deployment, HybridLocalThird) {
  Deployment d = Deployment::Hybrid(30, 4);
  EXPECT_EQ(d.providers, 5u);  // local + 4 CSPs
  EXPECT_EQ(d.SharesAt(0), 10u);  // n/3 at the trusted local server
  std::size_t remote = 0;
  for (std::uint32_t p = 1; p < 5; ++p) remote += d.SharesAt(p);
  EXPECT_EQ(remote, 20u);
  // Paper: local alone threatens confidentiality only together with remote
  // shares. With t = 9 the local server (10 shares) alone breaches the
  // threshold -- illustrating why the paper sizes t relative to the split.
  EXPECT_TRUE(d.CoalitionBreaches(std::vector<std::uint32_t>{0}, 9));
  EXPECT_FALSE(d.CoalitionBreaches(std::vector<std::uint32_t>{0}, 10));
  // Without the local server, need more than half the remote providers.
  EXPECT_FALSE(d.CoalitionBreaches(std::vector<std::uint32_t>{1, 2}, 10));
  EXPECT_TRUE(d.CoalitionBreaches(std::vector<std::uint32_t>{1, 2, 3}, 10));
}

TEST(Deployment, HostsOfPartitionsAllHosts) {
  Deployment d = Deployment::Hybrid(16, 3);
  std::vector<bool> seen(16, false);
  for (std::uint32_t p = 0; p < d.providers; ++p) {
    for (std::uint32_t h : d.HostsOf(p)) {
      EXPECT_FALSE(seen[h]);
      seen[h] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Deployment, UnreachableThreshold) {
  Deployment d = Deployment::MultiCloud(12, 4);
  // t = 12 can never be exceeded by the 12 shares in total.
  EXPECT_EQ(d.MinProvidersToBreach(12), 5u);  // providers + 1 == "impossible"
}

TEST(Deployment, Describe) {
  Deployment d = Deployment::Hybrid(9, 2);
  std::string s = d.Describe();
  EXPECT_NE(s.find("hybrid"), std::string::npos);
  EXPECT_NE(s.find("n=9"), std::string::npos);
}

}  // namespace
}  // namespace pisces
