// CSV recorder tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdint>
#include <fstream>

#include "pisces/recorder.h"

namespace pisces {
namespace {

TEST(Recorder, CsvShapeAndOrder) {
  Recorder rec({"a", "b", "c"});
  // Cells may be set in any order; output follows the column order.
  rec.NewRow().Set("b", 2).Set("a", 1).Set("c", 3).Commit();
  rec.NewRow().Set("a", "x").Set("b", "y").Set("c", "z").Commit();
  EXPECT_EQ(rec.rows(), 2u);
  EXPECT_EQ(rec.ToCsv(), "a,b,c\n1,2,3\nx,y,z\n");
}

TEST(Recorder, UnknownColumnThrowsAtSet) {
  Recorder rec({"a", "b"});
  EXPECT_THROW(rec.NewRow().Set("z", 3), InvalidArgument);
}

TEST(Recorder, MissingColumnThrowsAtCommit) {
  Recorder rec({"a", "b"});
  auto row = rec.NewRow();
  row.Set("a", 1);
  EXPECT_THROW(row.Commit(), InvalidArgument);
  EXPECT_EQ(rec.rows(), 0u);
}

TEST(Recorder, DuplicateSetThrows) {
  Recorder rec({"a"});
  auto row = rec.NewRow();
  row.Set("a", 1);
  EXPECT_THROW(row.Set("a", 2), InvalidArgument);
}

TEST(Recorder, CommitTwiceThrows) {
  Recorder rec({"a"});
  auto row = rec.NewRow();
  row.Set("a", 1);
  row.Commit();
  EXPECT_THROW(row.Commit(), InvalidArgument);
  EXPECT_EQ(rec.rows(), 1u);
}

// Golden bytes: the typed setters must produce exactly the strings the old
// hand-formatted rows produced (std::to_string for integers, "%.6g" for
// doubles, "1"/"0" for bools), so existing CSV consumers see no diff.
TEST(Recorder, TypedSettersGoldenCsv) {
  Recorder rec({"series", "n", "big", "neg", "ok", "bad", "ratio", "tiny",
                "wide", "label"});
  rec.NewRow()
      .Set("series", std::string("fig7"))
      .Set("n", 21)
      .Set("big", std::uint64_t{18446744073709551615ull})
      .Set("neg", std::int64_t{-42})
      .Set("ok", true)
      .Set("bad", false)
      .Set("ratio", 1.5)
      .Set("tiny", 0.000123456)
      .Set("wide", 123456789.0)
      .Set("label", "x,y")  // commas are not escaped; columns must avoid them
      .Commit();
  const char* golden =
      "series,n,big,neg,ok,bad,ratio,tiny,wide,label\n"
      "fig7,21,18446744073709551615,-42,1,0,1.5,0.000123456,1.23457e+08,x,y\n";
  EXPECT_EQ(rec.ToCsv(), golden);
}

TEST(Recorder, WritesFile) {
  Recorder rec({"x"});
  rec.NewRow().Set("x", 42).Commit();
  std::string path = ::testing::TempDir() + "/recorder_test.csv";
  rec.WriteFile(path);
  std::ifstream f(path);
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "x\n42\n");
  std::remove(path.c_str());
}

TEST(Recorder, NumFormatting) {
  EXPECT_EQ(Recorder::Num(1.5), "1.5");
  EXPECT_EQ(Recorder::Num(0.000123456), "0.000123456");
}

}  // namespace
}  // namespace pisces
