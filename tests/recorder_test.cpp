// CSV recorder tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "pisces/recorder.h"

namespace pisces {
namespace {

TEST(Recorder, CsvShapeAndOrder) {
  Recorder rec({"a", "b", "c"});
  rec.AddRow({{"b", "2"}, {"a", "1"}, {"c", "3"}});
  rec.AddRow({{"a", "x"}, {"b", "y"}, {"c", "z"}});
  EXPECT_EQ(rec.rows(), 2u);
  EXPECT_EQ(rec.ToCsv(), "a,b,c\n1,2,3\nx,y,z\n");
}

TEST(Recorder, MissingColumnThrows) {
  Recorder rec({"a", "b"});
  EXPECT_THROW(rec.AddRow({{"a", "1"}}), InvalidArgument);
  EXPECT_THROW(rec.AddRow({{"a", "1"}, {"b", "2"}, {"z", "3"}}),
               InvalidArgument);
}

TEST(Recorder, WritesFile) {
  Recorder rec({"x"});
  rec.AddRow({{"x", "42"}});
  std::string path = ::testing::TempDir() + "/recorder_test.csv";
  rec.WriteFile(path);
  std::ifstream f(path);
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "x\n42\n");
  std::remove(path.c_str());
}

TEST(Recorder, NumFormatting) {
  EXPECT_EQ(Recorder::Num(1.5), "1.5");
  EXPECT_EQ(Recorder::Num(0.000123456), "0.000123456");
}

}  // namespace
}  // namespace pisces
