// Packed proactive secret sharing: parameterized property sweeps over
// (n, t, l, r) grids for share/reconstruct, refresh, recovery, privacy
// counting, and the VSS batch pipeline.
#include <gtest/gtest.h>

#include <memory>

#include "common/clock.h"
#include "field/primes.h"
#include "pss/recovery.h"
#include "pss/refresh.h"

namespace pisces::pss {
namespace {

using field::FpCtx;
using field::FpElem;

struct GridPoint {
  std::size_t n, t, l, r;
};

std::ostream& operator<<(std::ostream& os, const GridPoint& g) {
  return os << "n" << g.n << "_t" << g.t << "_l" << g.l << "_r" << g.r;
}

class PssGridTest : public ::testing::TestWithParam<GridPoint> {
 protected:
  PssGridTest()
      : ctx_(std::make_shared<const FpCtx>(field::StandardPrimeBe(256))),
        rng_(0xABCDu) {
    const GridPoint& g = GetParam();
    params_.n = g.n;
    params_.t = g.t;
    params_.l = g.l;
    params_.r = g.r;
    params_.field_bits = 256;
    params_.Validate();
    shamir_ = std::make_unique<PackedShamir>(ctx_, params_);
  }

  std::vector<FpElem> RandomBlock() {
    std::vector<FpElem> s;
    for (std::size_t j = 0; j < params_.l; ++j) s.push_back(ctx_->Random(rng_));
    return s;
  }

  std::vector<std::uint32_t> AllParties() const {
    std::vector<std::uint32_t> p(params_.n);
    for (std::uint32_t i = 0; i < params_.n; ++i) p[i] = i;
    return p;
  }

  std::shared_ptr<const FpCtx> ctx_;
  Rng rng_;
  Params params_;
  std::unique_ptr<PackedShamir> shamir_;
};

TEST_P(PssGridTest, ShareReconstructRoundTrip) {
  auto secrets = RandomBlock();
  auto shares = shamir_->ShareBlock(secrets, rng_);
  ASSERT_EQ(shares.size(), params_.n);
  auto parties = AllParties();
  auto rec = shamir_->ReconstructBlock(parties, shares);
  ASSERT_EQ(rec.size(), params_.l);
  for (std::size_t j = 0; j < params_.l; ++j) {
    EXPECT_TRUE(ctx_->Eq(rec[j], secrets[j]));
  }
}

TEST_P(PssGridTest, ReconstructFromExactlyDPlus1) {
  auto secrets = RandomBlock();
  auto shares = shamir_->ShareBlock(secrets, rng_);
  // Use the LAST d+1 parties (not the first, to exercise arbitrary subsets).
  const std::size_t need = params_.degree() + 1;
  std::vector<std::uint32_t> parties;
  std::vector<FpElem> sub;
  for (std::size_t i = params_.n - need; i < params_.n; ++i) {
    parties.push_back(static_cast<std::uint32_t>(i));
    sub.push_back(shares[i]);
  }
  auto rec = shamir_->ReconstructBlock(parties, sub);
  for (std::size_t j = 0; j < params_.l; ++j) {
    EXPECT_TRUE(ctx_->Eq(rec[j], secrets[j]));
  }
}

TEST_P(PssGridTest, TooFewSharesThrows) {
  auto shares = shamir_->ShareBlock(RandomBlock(), rng_);
  const std::size_t d = params_.degree();
  std::vector<std::uint32_t> parties;
  std::vector<FpElem> sub;
  for (std::size_t i = 0; i < d; ++i) {  // one fewer than needed
    parties.push_back(static_cast<std::uint32_t>(i));
    sub.push_back(shares[i]);
  }
  EXPECT_THROW(shamir_->ReconstructBlock(parties, sub), InvalidArgument);
}

TEST_P(PssGridTest, SharesAreConsistentDegree) {
  auto shares = shamir_->ShareBlock(RandomBlock(), rng_);
  auto parties = AllParties();
  EXPECT_TRUE(shamir_->ConsistentShares(parties, shares));
  shares[0] = ctx_->Add(shares[0], ctx_->One());
  if (params_.n > params_.degree() + 1) {
    EXPECT_FALSE(shamir_->ConsistentShares(parties, shares));
  }
}

// Information-theoretic privacy: t shares are consistent with ANY candidate
// secret block (we exhibit a degree-d polynomial matching the t shares and an
// arbitrary alternative secret).
TEST_P(PssGridTest, TSharesRevealNothing) {
  auto secrets = RandomBlock();
  auto shares = shamir_->ShareBlock(secrets, rng_);
  auto fake_secrets = RandomBlock();

  // Constraints: the t observed shares plus the fake secrets at the betas.
  std::vector<FpElem> xs, ys;
  for (std::size_t i = 0; i < params_.t; ++i) {
    xs.push_back(shamir_->points().alpha(i));
    ys.push_back(shares[i]);
  }
  for (std::size_t j = 0; j < params_.l; ++j) {
    xs.push_back(shamir_->points().beta(j));
    ys.push_back(fake_secrets[j]);
  }
  ASSERT_LE(xs.size(), params_.degree() + 1);
  math::Poly f = math::Poly::RandomWithConstraints(*ctx_, rng_,
                                                   params_.degree(), xs, ys);
  // f is a valid degree-d sharing of the FAKE secrets agreeing with every
  // observed share: the adversary cannot distinguish.
  for (std::size_t i = 0; i < params_.t; ++i) {
    EXPECT_TRUE(ctx_->Eq(f.Eval(*ctx_, shamir_->points().alpha(i)), shares[i]));
  }
  for (std::size_t j = 0; j < params_.l; ++j) {
    EXPECT_TRUE(
        ctx_->Eq(f.Eval(*ctx_, shamir_->points().beta(j)), fake_secrets[j]));
  }
}

TEST_P(PssGridTest, RefreshPreservesSecretsAndChangesShares) {
  const std::size_t blocks = 4;
  std::vector<std::vector<FpElem>> secrets;
  std::vector<std::vector<FpElem>> by_party(params_.n,
                                            std::vector<FpElem>(blocks));
  for (std::size_t b = 0; b < blocks; ++b) {
    secrets.push_back(RandomBlock());
    auto shares = shamir_->ShareBlock(secrets[b], rng_);
    for (std::size_t i = 0; i < params_.n; ++i) by_party[i][b] = shares[i];
  }
  auto old = by_party;
  ReferenceRefresh(*shamir_, by_party, rng_);

  auto parties = AllParties();
  for (std::size_t b = 0; b < blocks; ++b) {
    std::vector<FpElem> shares;
    for (std::size_t i = 0; i < params_.n; ++i) {
      EXPECT_FALSE(ctx_->Eq(old[i][b], by_party[i][b]));
      shares.push_back(by_party[i][b]);
    }
    EXPECT_TRUE(shamir_->ConsistentShares(parties, shares));
    auto rec = shamir_->ReconstructBlock(parties, shares);
    for (std::size_t j = 0; j < params_.l; ++j) {
      EXPECT_TRUE(ctx_->Eq(rec[j], secrets[b][j]));
    }
  }
}

TEST_P(PssGridTest, RecoveryReproducesExactShares) {
  const std::size_t blocks = 3;
  std::vector<std::vector<FpElem>> by_party(params_.n,
                                            std::vector<FpElem>(blocks));
  for (std::size_t b = 0; b < blocks; ++b) {
    auto shares = shamir_->ShareBlock(RandomBlock(), rng_);
    for (std::size_t i = 0; i < params_.n; ++i) by_party[i][b] = shares[i];
  }
  auto truth = by_party;
  std::vector<std::uint32_t> reboot;
  for (std::size_t i = 0; i < params_.r; ++i) {
    reboot.push_back(static_cast<std::uint32_t>((i * 2) % params_.n));
    // ensure distinct for r small relative to n
  }
  std::sort(reboot.begin(), reboot.end());
  reboot.erase(std::unique(reboot.begin(), reboot.end()), reboot.end());
  for (auto tgt : reboot) {
    by_party[tgt].assign(blocks, ctx_->Zero());
  }
  ReferenceRecover(*shamir_, by_party, reboot, rng_);
  for (auto tgt : reboot) {
    for (std::size_t b = 0; b < blocks; ++b) {
      EXPECT_TRUE(ctx_->Eq(by_party[tgt][b], truth[tgt][b]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PssGridTest,
    ::testing::Values(GridPoint{5, 1, 1, 1}, GridPoint{8, 1, 2, 2},
                      GridPoint{13, 2, 3, 2}, GridPoint{13, 3, 2, 1},
                      GridPoint{16, 3, 3, 3}, GridPoint{21, 4, 6, 3},
                      GridPoint{21, 5, 4, 1}, GridPoint{29, 7, 6, 1}),
    [](const ::testing::TestParamInfo<GridPoint>& info) {
      std::ostringstream os;
      os << info.param;
      return os.str();
    });

TEST(Params, ValidationRejectsBadCombos) {
  Params p;
  p.n = 10;
  p.t = 3;
  p.l = 1;  // 3t + l = 10, not < 10
  EXPECT_FALSE(p.IsValid());
  p.t = 2;
  p.l = 3;  // 3t + l = 9 < 10, r + l = 4 <= 10 - 6 = 4
  EXPECT_TRUE(p.IsValid());
  p.r = 2;  // r + l = 5 > 4
  EXPECT_FALSE(p.IsValid());
  p.r = 0;
  EXPECT_FALSE(p.IsValid());
  p = Params{};
  p.n = 3;
  EXPECT_FALSE(p.IsValid());
}

TEST(Params, NaturalMatchesPaper) {
  // Paper SectionIII-B: (t, l) = (n/4, n/4 - 1) is the natural choice.
  Params p = Params::Natural(21);
  EXPECT_EQ(p.n, 21u);
  EXPECT_EQ(p.t, 5u);
  EXPECT_EQ(p.l, 4u);
  EXPECT_TRUE(p.IsValid());
  for (std::size_t n : {8u, 12u, 16u, 24u, 29u, 37u}) {
    EXPECT_TRUE(Params::Natural(n).IsValid()) << n;
  }
}

TEST(EvalPoints, DisjointAndNonZero) {
  FpCtx ctx(field::StandardPrimeBe(256));
  EvalPoints pts(ctx, 10, 4);
  std::vector<FpElem> all;
  for (std::size_t j = 0; j < 4; ++j) all.push_back(pts.beta(j));
  for (std::size_t i = 0; i < 10; ++i) all.push_back(pts.alpha(i));
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_FALSE(ctx.IsZero(all[i]));
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_FALSE(ctx.Eq(all[i], all[j]));
    }
  }
}

class VssBatchTest : public ::testing::Test {
 protected:
  VssBatchTest()
      : ctx_(std::make_shared<const FpCtx>(field::StandardPrimeBe(256))),
        rng_(77) {
    params_.n = 13;
    params_.t = 2;
    params_.l = 3;
    params_.field_bits = 256;
    shamir_ = std::make_unique<PackedShamir>(ctx_, params_);
  }
  std::shared_ptr<const FpCtx> ctx_;
  Rng rng_;
  Params params_;
  std::unique_ptr<PackedShamir> shamir_;
};

TEST_F(VssBatchTest, DealsVanishOnTheVanishSet) {
  VssBatch batch = MakeRefreshBatch(*shamir_, 5);
  auto deal = batch.Deal(rng_);
  ASSERT_EQ(deal.size(), params_.n);
  // Interpolate each group's polynomial from all holder evaluations and
  // check it vanishes at every beta and has degree <= d.
  std::vector<FpElem> xs;
  for (std::size_t i = 0; i < params_.n; ++i) {
    xs.push_back(shamir_->points().alpha(i));
  }
  for (std::size_t g = 0; g < batch.groups(); ++g) {
    std::vector<FpElem> ys;
    for (std::size_t k = 0; k < params_.n; ++k) ys.push_back(deal[k][g]);
    EXPECT_TRUE(math::PointsOnLowDegree(*ctx_, xs, ys, params_.degree()));
    math::Poly f = math::Poly::Interpolate(
        *ctx_, std::span<const FpElem>(xs.data(), params_.degree() + 1),
        std::span<const FpElem>(ys.data(), params_.degree() + 1));
    for (std::size_t j = 0; j < params_.l; ++j) {
      EXPECT_TRUE(ctx_->IsZero(f.Eval(*ctx_, shamir_->points().beta(j))));
    }
  }
}

TEST_F(VssBatchTest, VerifyAcceptsHonestAndRejectsCorrupt) {
  VssBatch batch = MakeRefreshBatch(*shamir_, 3);
  auto deal = batch.Deal(rng_);
  std::vector<FpElem> column;
  for (std::size_t k = 0; k < params_.n; ++k) column.push_back(deal[k][0]);
  EXPECT_TRUE(batch.VerifyCheckVector(column));
  // Degree violation.
  auto bad = column;
  bad[4] = ctx_->Add(bad[4], ctx_->One());
  EXPECT_FALSE(batch.VerifyCheckVector(bad));
  // Vanishing violation: add a constant 1 to the polynomial (degree fine,
  // nonzero at the betas).
  auto shifted = column;
  for (auto& v : shifted) v = ctx_->Add(v, ctx_->One());
  EXPECT_FALSE(batch.VerifyCheckVector(shifted));
  // Wrong size.
  shifted.pop_back();
  EXPECT_FALSE(batch.VerifyCheckVector(shifted));
}

TEST_F(VssBatchTest, TransformedOutputsStillVanishAndVerify) {
  VssBatch batch = MakeRefreshBatch(*shamir_, 4);
  std::vector<std::vector<std::vector<FpElem>>> deals;
  for (std::size_t i = 0; i < params_.n; ++i) deals.push_back(batch.Deal(rng_));
  std::vector<std::vector<std::vector<FpElem>>> outputs(params_.n);
  for (std::size_t k = 0; k < params_.n; ++k) {
    std::vector<std::vector<FpElem>> col(params_.n);
    for (std::size_t i = 0; i < params_.n; ++i) col[i] = deals[i][k];
    outputs[k] = batch.Transform(col);
  }
  for (std::size_t a = 0; a < params_.n; ++a) {
    for (std::size_t g = 0; g < batch.groups(); ++g) {
      std::vector<FpElem> column;
      for (std::size_t k = 0; k < params_.n; ++k) {
        column.push_back(outputs[k][a][g]);
      }
      EXPECT_TRUE(batch.VerifyCheckVector(column)) << a << "," << g;
    }
  }
}

TEST_F(VssBatchTest, TransformWithWorkersMatchesSerial) {
  VssBatch batch = MakeRefreshBatch(*shamir_, 6);
  auto deal = batch.Deal(rng_);
  std::vector<std::vector<FpElem>> col(params_.n);
  for (std::size_t i = 0; i < params_.n; ++i) col[i] = deal[i % deal.size()];
  // Total CPU = ambient (caller's chunk) + extra (pool workers); with a
  // single-thread global pool the extra stays zero and everything runs inline.
  std::uint64_t extra1 = 0, extra4 = 0;
  CpuTimer ambient1, ambient4;
  ambient1.Start();
  auto serial = batch.Transform(col, 1, &extra1);
  ambient1.Stop();
  ambient4.Start();
  auto parallel = batch.Transform(col, 4, &extra4);
  ambient4.Stop();
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t a = 0; a < serial.size(); ++a) {
    for (std::size_t g = 0; g < batch.groups(); ++g) {
      EXPECT_TRUE(ctx_->Eq(serial[a][g], parallel[a][g]));
    }
  }
  EXPECT_GT(ambient1.nanos() + extra1, 0u);
  EXPECT_GT(ambient4.nanos() + extra4, 0u);
}

TEST_F(VssBatchTest, GroupsFor) {
  EXPECT_EQ(GroupsFor(1, 5), 1u);
  EXPECT_EQ(GroupsFor(5, 5), 1u);
  EXPECT_EQ(GroupsFor(6, 5), 2u);
  EXPECT_EQ(GroupsFor(11, 5), 3u);
}

TEST_F(VssBatchTest, RecoveryMaskVanishesAtTargetOnly) {
  RecoveryPlan plan = RecoveryPlan::For(4, params_, std::vector<std::uint32_t>{3});
  VssBatch batch = MakeRecoveryBatch(*shamir_, plan, 3);
  auto deal = batch.Deal(rng_);
  std::vector<FpElem> xs;
  for (std::uint32_t s : plan.survivors) {
    xs.push_back(shamir_->points().alpha(s));
  }
  std::vector<FpElem> ys;
  for (std::size_t k = 0; k < plan.survivors.size(); ++k) {
    ys.push_back(deal[k][0]);
  }
  math::Poly f = math::Poly::Interpolate(
      *ctx_, std::span<const FpElem>(xs.data(), params_.degree() + 1),
      std::span<const FpElem>(ys.data(), params_.degree() + 1));
  EXPECT_TRUE(ctx_->IsZero(f.Eval(*ctx_, shamir_->points().alpha(3))));
  // Random (whp nonzero) at the secret points -- the mask hides the secrets.
  bool all_zero = true;
  for (std::size_t j = 0; j < params_.l; ++j) {
    if (!ctx_->IsZero(f.Eval(*ctx_, shamir_->points().beta(j)))) {
      all_zero = false;
    }
  }
  EXPECT_FALSE(all_zero);
}

TEST(RecoveryPlan, SurvivorsExcludeTargetsAndValidate) {
  Params p;
  p.n = 13;
  p.t = 2;
  p.l = 3;
  p.r = 2;
  p.field_bits = 256;
  auto plan = RecoveryPlan::For(10, p, std::vector<std::uint32_t>{1, 5});
  EXPECT_EQ(plan.survivors.size(), 11u);
  for (std::uint32_t s : plan.survivors) {
    EXPECT_NE(s, 1u);
    EXPECT_NE(s, 5u);
  }
  EXPECT_EQ(plan.usable, 11u - 4u);
  // More targets than r is rejected.
  EXPECT_THROW(
      RecoveryPlan::For(10, p, std::vector<std::uint32_t>{1, 5, 7}),
      InvalidArgument);
}

}  // namespace
}  // namespace pisces::pss
