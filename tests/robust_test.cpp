// Berlekamp-Welch decoding and the robust reconstruction paths built on it.
#include <gtest/gtest.h>

#include <memory>

#include "field/primes.h"
#include "math/berlekamp_welch.h"
#include "pisces/pisces.h"
#include "pss/packed_shamir.h"

namespace pisces {
namespace {

using field::FpCtx;
using field::FpElem;

class BwTest : public ::testing::Test {
 protected:
  BwTest() : ctx_(field::StandardPrimeBe(256)), rng_(17) {}
  FpCtx ctx_;
  Rng rng_;

  FpElem E(std::uint64_t v) { return ctx_.FromUint64(v); }
};

TEST_F(BwTest, SolveLinearSystemSquare) {
  // 2x + y = 5, x + y = 3 -> x = 2, y = 1
  math::Matrix a(2, 2);
  a.At(0, 0) = E(2);
  a.At(0, 1) = E(1);
  a.At(1, 0) = E(1);
  a.At(1, 1) = E(1);
  auto x = math::SolveLinearSystem(ctx_, a, {E(5), E(3)});
  ASSERT_TRUE(x.has_value());
  EXPECT_TRUE(ctx_.Eq((*x)[0], E(2)));
  EXPECT_TRUE(ctx_.Eq((*x)[1], E(1)));
}

TEST_F(BwTest, SolveLinearSystemOverdeterminedConsistent) {
  // x = 4 with three consistent equations and one redundant column pattern.
  math::Matrix a(3, 1);
  a.At(0, 0) = E(1);
  a.At(1, 0) = E(2);
  a.At(2, 0) = E(3);
  auto x = math::SolveLinearSystem(ctx_, a, {E(4), E(8), E(12)});
  ASSERT_TRUE(x.has_value());
  EXPECT_TRUE(ctx_.Eq((*x)[0], E(4)));
}

TEST_F(BwTest, SolveLinearSystemInconsistent) {
  math::Matrix a(2, 1);
  a.At(0, 0) = E(1);
  a.At(1, 0) = E(1);
  EXPECT_FALSE(math::SolveLinearSystem(ctx_, a, {E(1), E(2)}).has_value());
}

TEST_F(BwTest, DivModRoundTrip) {
  for (int iter = 0; iter < 5; ++iter) {
    math::Poly b = math::Poly::Random(ctx_, rng_, 3);
    if (ctx_.IsZero(b.coeffs().back())) continue;
    math::Poly q_true = math::Poly::Random(ctx_, rng_, 4);
    math::Poly r_true = math::Poly::Random(ctx_, rng_, 2);
    math::Poly a = math::Poly::Add(ctx_, math::Poly::Mul(ctx_, q_true, b), r_true);
    auto [q, r] = math::Poly::DivMod(ctx_, a, b);
    // Verify a == q*b + r and deg(r) < deg(b) by evaluation.
    FpElem x = ctx_.Random(rng_);
    FpElem lhs = a.Eval(ctx_, x);
    FpElem rhs = ctx_.Add(ctx_.Mul(q.Eval(ctx_, x), b.Eval(ctx_, x)),
                          r.Eval(ctx_, x));
    EXPECT_TRUE(ctx_.Eq(lhs, rhs));
    EXPECT_LT(r.size(), b.Trimmed(ctx_).size());
  }
}

TEST_F(BwTest, DivModExactDivision) {
  math::Poly b = math::Poly::Vanishing(ctx_, std::vector<FpElem>{E(1), E(2)});
  math::Poly q_true = math::Poly::Random(ctx_, rng_, 3);
  math::Poly a = math::Poly::Mul(ctx_, q_true, b);
  auto [q, r] = math::Poly::DivMod(ctx_, a, b);
  EXPECT_EQ(r.size(), 0u);
  FpElem x = ctx_.Random(rng_);
  EXPECT_TRUE(ctx_.Eq(q.Eval(ctx_, x), q_true.Eval(ctx_, x)));
}

class BwDecodeTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  BwDecodeTest() : ctx_(field::StandardPrimeBe(256)), rng_(23) {}
  FpCtx ctx_;
  Rng rng_;
};

TEST_P(BwDecodeTest, DecodesUpToRadius) {
  const std::size_t errors = GetParam();
  const std::size_t deg = 4;
  const std::size_t n = deg + 2 * errors + 1;
  math::Poly f = math::Poly::Random(ctx_, rng_, deg);
  std::vector<FpElem> xs, ys;
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(ctx_.FromUint64(i + 1));
    ys.push_back(f.Eval(ctx_, xs.back()));
  }
  // Corrupt `errors` positions (spread out).
  for (std::size_t e = 0; e < errors; ++e) {
    ys[(e * 2 + 1) % n] = ctx_.Random(rng_);
  }
  auto decoded = math::RobustInterpolate(ctx_, xs, ys, deg, errors);
  ASSERT_TRUE(decoded.has_value()) << "errors=" << errors;
  for (int probe = 0; probe < 4; ++probe) {
    FpElem x = ctx_.Random(rng_);
    EXPECT_TRUE(ctx_.Eq(decoded->Eval(ctx_, x), f.Eval(ctx_, x)));
  }
  auto bad = math::Mismatches(ctx_, *decoded, xs, ys);
  EXPECT_LE(bad.size(), errors);
}

INSTANTIATE_TEST_SUITE_P(ErrorCounts, BwDecodeTest,
                         ::testing::Values(0, 1, 2, 3, 5));

TEST_F(BwTest, FailsBeyondRadius) {
  const std::size_t deg = 3;
  const std::size_t n = deg + 2 + 1;  // radius 1
  math::Poly f = math::Poly::Random(ctx_, rng_, deg);
  std::vector<FpElem> xs, ys;
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(E(i + 1));
    ys.push_back(f.Eval(ctx_, xs.back()));
  }
  ys[0] = ctx_.Random(rng_);
  ys[2] = ctx_.Random(rng_);  // 2 errors > radius 1
  auto decoded = math::RobustInterpolate(ctx_, xs, ys, deg, 1);
  if (decoded) {
    // If anything decodes it must NOT silently claim consistency with <= 1
    // error (the verification step guards this).
    EXPECT_LE(math::Mismatches(ctx_, *decoded, xs, ys).size(), 1u);
  }
}

TEST(RobustShamir, ToleratesCorruptShares) {
  auto ctx = std::make_shared<const FpCtx>(field::StandardPrimeBe(256));
  pss::Params p;
  p.n = 13;
  p.t = 2;
  p.l = 3;  // d = 5: radius with all 13 shares = (13-6)/2 = 3
  p.field_bits = 256;
  pss::PackedShamir shamir(ctx, p);
  Rng rng(31);
  std::vector<FpElem> secrets;
  for (std::size_t j = 0; j < p.l; ++j) secrets.push_back(ctx->Random(rng));
  auto shares = shamir.ShareBlock(secrets, rng);
  shares[1] = ctx->Random(rng);
  shares[6] = ctx->Random(rng);  // two corrupted shares (t = 2)
  std::vector<std::uint32_t> parties;
  for (std::uint32_t i = 0; i < p.n; ++i) parties.push_back(i);
  auto rec = shamir.RobustReconstructBlock(parties, shares);
  ASSERT_TRUE(rec.has_value());
  for (std::size_t j = 0; j < p.l; ++j) {
    EXPECT_TRUE(ctx->Eq((*rec)[j], secrets[j]));
  }
}

TEST(RobustDownload, ClientSurvivesLyingHosts) {
  // Two hosts return garbage shares; the plain path's checksum catches it
  // and the Berlekamp-Welch fallback still reconstructs the exact file.
  ClusterConfig cfg;
  cfg.params.n = 13;
  cfg.params.t = 2;
  cfg.params.l = 3;
  cfg.params.r = 2;
  cfg.params.field_bits = 256;
  cfg.encrypt_links = false;  // mutate share payloads on the wire
  cfg.seed = 51;
  Cluster cluster(cfg);
  Rng rng(3);
  Bytes file = rng.RandomBytes(2000);
  cluster.Upload(1, file);

  const std::size_t elem = cluster.ctx().elem_bytes();
  cluster.net().SetMutator([&](net::Message& m) {
    if (m.type == net::MsgType::kShareResponse &&
        (m.from == 0 || m.from == 1) && m.payload.size() > 3 * elem) {
      // Corrupt share words beyond the meta blob (keep meta intact).
      for (std::size_t off = m.payload.size() - elem;
           off < m.payload.size() - 8; ++off) {
        m.payload[off] ^= 0x5A;
      }
    }
    return true;
  });
  Bytes back = cluster.Download(pisces::ReadSpec::Classic(1));
  cluster.net().SetMutator(nullptr);
  EXPECT_EQ(back, file);
}

}  // namespace
}  // namespace pisces
