// Resharing to a new group (dynamic-group extension).
#include <gtest/gtest.h>

#include <memory>

#include "field/primes.h"
#include "pss/reshare.h"

namespace pisces::pss {
namespace {

using field::FpCtx;
using field::FpElem;

class ReshareTest : public ::testing::Test {
 protected:
  ReshareTest()
      : ctx_(std::make_shared<const FpCtx>(field::StandardPrimeBe(256))),
        rng_(41) {}

  PackedShamir Make(std::size_t n, std::size_t t, std::size_t l) {
    Params p;
    p.n = n;
    p.t = t;
    p.l = l;
    p.field_bits = 256;
    return PackedShamir(ctx_, p);
  }

  // shares_by_party[i][blk] for `blocks` random blocks; returns secrets too.
  std::pair<std::vector<std::vector<FpElem>>, std::vector<std::vector<FpElem>>>
  ShareBlocks(const PackedShamir& scheme, std::size_t blocks) {
    const Params& p = scheme.params();
    std::vector<std::vector<FpElem>> by_party(p.n,
                                              std::vector<FpElem>(blocks));
    std::vector<std::vector<FpElem>> secrets(blocks);
    for (std::size_t b = 0; b < blocks; ++b) {
      for (std::size_t j = 0; j < p.l; ++j) {
        secrets[b].push_back(ctx_->Random(rng_));
      }
      auto sh = scheme.ShareBlock(secrets[b], rng_);
      for (std::size_t i = 0; i < p.n; ++i) by_party[i][b] = sh[i];
    }
    return {std::move(by_party), std::move(secrets)};
  }

  void ExpectSecrets(const PackedShamir& scheme,
                     const std::vector<std::vector<FpElem>>& by_party,
                     const std::vector<std::vector<FpElem>>& secrets) {
    const Params& p = scheme.params();
    std::vector<std::uint32_t> parties;
    for (std::uint32_t i = 0; i < p.n; ++i) parties.push_back(i);
    for (std::size_t b = 0; b < secrets.size(); ++b) {
      std::vector<FpElem> sh;
      for (std::size_t i = 0; i < p.n; ++i) sh.push_back(by_party[i][b]);
      ASSERT_TRUE(scheme.ConsistentShares(parties, sh)) << "block " << b;
      auto rec = scheme.ReconstructBlock(parties, sh);
      for (std::size_t j = 0; j < p.l; ++j) {
        EXPECT_TRUE(ctx_->Eq(rec[j], secrets[b][j])) << b << "," << j;
      }
    }
  }

  std::shared_ptr<const FpCtx> ctx_;
  Rng rng_;
};

TEST_F(ReshareTest, GrowTheGroup) {
  PackedShamir from = Make(8, 1, 2);
  PackedShamir to = Make(13, 3, 2);
  auto [old_shares, secrets] = ShareBlocks(from, 4);
  auto new_shares = ReferenceReshare(from, to, old_shares, rng_);
  ASSERT_EQ(new_shares.size(), 13u);
  ExpectSecrets(to, new_shares, secrets);
}

TEST_F(ReshareTest, ShrinkTheGroup) {
  PackedShamir from = Make(13, 3, 2);
  PackedShamir to = Make(8, 1, 2);
  auto [old_shares, secrets] = ShareBlocks(from, 3);
  auto new_shares = ReferenceReshare(from, to, old_shares, rng_);
  ExpectSecrets(to, new_shares, secrets);
}

TEST_F(ReshareTest, SameShapeStillRerandomizes) {
  PackedShamir from = Make(10, 2, 2);
  PackedShamir to = Make(10, 2, 2);
  auto [old_shares, secrets] = ShareBlocks(from, 3);
  auto new_shares = ReferenceReshare(from, to, old_shares, rng_);
  ExpectSecrets(to, new_shares, secrets);
  // Every share changed: resharing implies rerandomization.
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t b = 0; b < 3; ++b) {
      EXPECT_FALSE(ctx_->Eq(new_shares[i][b], old_shares[i][b]));
    }
  }
}

TEST_F(ReshareTest, RaiseThreshold) {
  PackedShamir from = Make(13, 2, 3);
  PackedShamir to = Make(13, 3, 3);
  auto [old_shares, secrets] = ShareBlocks(from, 2);
  auto new_shares = ReferenceReshare(from, to, old_shares, rng_);
  ExpectSecrets(to, new_shares, secrets);
  // New sharing really has the new (higher) degree: t_new shares plus the
  // secrets leave randomness -- spot check that d_new+1 shares are needed by
  // failing reconstruction from d_old+1 < d_new+1 shares.
  std::vector<std::uint32_t> few;
  std::vector<FpElem> sh;
  for (std::uint32_t i = 0; i <= from.params().degree(); ++i) {
    few.push_back(i);
    sh.push_back(new_shares[i][0]);
  }
  // Interpolating with too few points must NOT yield the secrets (whp).
  auto wrong = math::LagrangeEval(
      *ctx_, to.points().AlphasOf(few),
      sh, to.points().beta(0));
  EXPECT_FALSE(ctx_->Eq(wrong, secrets[0][0]));
}

TEST_F(ReshareTest, PackingMismatchRejected) {
  PackedShamir from = Make(8, 1, 2);
  PackedShamir to = Make(13, 2, 3);
  auto [old_shares, secrets] = ShareBlocks(from, 1);
  EXPECT_THROW(ReferenceReshare(from, to, old_shares, rng_), InvalidArgument);
}

TEST_F(ReshareTest, ContributionIsMaskedPerContributor) {
  // The value one old party sends is uniform without the others: two runs
  // with different mask randomness differ even for identical shares.
  PackedShamir from = Make(8, 1, 2);
  PackedShamir to = Make(8, 1, 2);
  auto [old_shares, secrets] = ShareBlocks(from, 1);
  Rng rng_a(1), rng_b(2);
  auto a = ReferenceReshare(from, to, old_shares, rng_a);
  auto b = ReferenceReshare(from, to, old_shares, rng_b);
  EXPECT_FALSE(ctx_->Eq(a[0][0], b[0][0]));
  ExpectSecrets(to, a, secrets);
  ExpectSecrets(to, b, secrets);
}

}  // namespace
}  // namespace pisces::pss
