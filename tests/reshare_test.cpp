// Resharing to a new group (dynamic-group extension): the ReferenceReshare
// oracle, the decomposed contribution/verify API, and the differential suite
// pinning Hypervisor::Reshare against the oracle (docs/resharding.md).
#include <gtest/gtest.h>

#include <memory>

#include "common/task_pool.h"
#include "field/primes.h"
#include "net/net_obs.h"
#include "obs/registry.h"
#include "pisces/cluster.h"
#include "pss/reshare.h"

namespace pisces::pss {
namespace {

using field::FpCtx;
using field::FpElem;

class ReshareTest : public ::testing::Test {
 protected:
  ReshareTest()
      : ctx_(std::make_shared<const FpCtx>(field::StandardPrimeBe(256))),
        rng_(41) {}

  PackedShamir Make(std::size_t n, std::size_t t, std::size_t l) {
    Params p;
    p.n = n;
    p.t = t;
    p.l = l;
    p.field_bits = 256;
    return PackedShamir(ctx_, p);
  }

  // shares_by_party[i][blk] for `blocks` random blocks; returns secrets too.
  std::pair<std::vector<std::vector<FpElem>>, std::vector<std::vector<FpElem>>>
  ShareBlocks(const PackedShamir& scheme, std::size_t blocks) {
    const Params& p = scheme.params();
    std::vector<std::vector<FpElem>> by_party(p.n,
                                              std::vector<FpElem>(blocks));
    std::vector<std::vector<FpElem>> secrets(blocks);
    for (std::size_t b = 0; b < blocks; ++b) {
      for (std::size_t j = 0; j < p.l; ++j) {
        secrets[b].push_back(ctx_->Random(rng_));
      }
      auto sh = scheme.ShareBlock(secrets[b], rng_);
      for (std::size_t i = 0; i < p.n; ++i) by_party[i][b] = sh[i];
    }
    return {std::move(by_party), std::move(secrets)};
  }

  void ExpectSecrets(const PackedShamir& scheme,
                     const std::vector<std::vector<FpElem>>& by_party,
                     const std::vector<std::vector<FpElem>>& secrets) {
    const Params& p = scheme.params();
    std::vector<std::uint32_t> parties;
    for (std::uint32_t i = 0; i < p.n; ++i) parties.push_back(i);
    for (std::size_t b = 0; b < secrets.size(); ++b) {
      std::vector<FpElem> sh;
      for (std::size_t i = 0; i < p.n; ++i) sh.push_back(by_party[i][b]);
      ASSERT_TRUE(scheme.ConsistentShares(parties, sh)) << "block " << b;
      auto rec = scheme.ReconstructBlock(parties, sh);
      for (std::size_t j = 0; j < p.l; ++j) {
        EXPECT_TRUE(ctx_->Eq(rec[j], secrets[b][j])) << b << "," << j;
      }
    }
  }

  std::shared_ptr<const FpCtx> ctx_;
  Rng rng_;
};

TEST_F(ReshareTest, GrowTheGroup) {
  PackedShamir from = Make(8, 1, 2);
  PackedShamir to = Make(13, 3, 2);
  auto [old_shares, secrets] = ShareBlocks(from, 4);
  auto new_shares = ReferenceReshare(from, to, old_shares, rng_);
  ASSERT_EQ(new_shares.size(), 13u);
  ExpectSecrets(to, new_shares, secrets);
}

TEST_F(ReshareTest, ShrinkTheGroup) {
  PackedShamir from = Make(13, 3, 2);
  PackedShamir to = Make(8, 1, 2);
  auto [old_shares, secrets] = ShareBlocks(from, 3);
  auto new_shares = ReferenceReshare(from, to, old_shares, rng_);
  ExpectSecrets(to, new_shares, secrets);
}

TEST_F(ReshareTest, SameShapeStillRerandomizes) {
  PackedShamir from = Make(10, 2, 2);
  PackedShamir to = Make(10, 2, 2);
  auto [old_shares, secrets] = ShareBlocks(from, 3);
  auto new_shares = ReferenceReshare(from, to, old_shares, rng_);
  ExpectSecrets(to, new_shares, secrets);
  // Every share changed: resharing implies rerandomization.
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t b = 0; b < 3; ++b) {
      EXPECT_FALSE(ctx_->Eq(new_shares[i][b], old_shares[i][b]));
    }
  }
}

TEST_F(ReshareTest, RaiseThreshold) {
  PackedShamir from = Make(13, 2, 3);
  PackedShamir to = Make(13, 3, 3);
  auto [old_shares, secrets] = ShareBlocks(from, 2);
  auto new_shares = ReferenceReshare(from, to, old_shares, rng_);
  ExpectSecrets(to, new_shares, secrets);
  // New sharing really has the new (higher) degree: t_new shares plus the
  // secrets leave randomness -- spot check that d_new+1 shares are needed by
  // failing reconstruction from d_old+1 < d_new+1 shares.
  std::vector<std::uint32_t> few;
  std::vector<FpElem> sh;
  for (std::uint32_t i = 0; i <= from.params().degree(); ++i) {
    few.push_back(i);
    sh.push_back(new_shares[i][0]);
  }
  // Interpolating with too few points must NOT yield the secrets (whp).
  auto wrong = math::LagrangeEval(
      *ctx_, to.points().AlphasOf(few),
      sh, to.points().beta(0));
  EXPECT_FALSE(ctx_->Eq(wrong, secrets[0][0]));
}

TEST_F(ReshareTest, PackingMismatchRejected) {
  PackedShamir from = Make(8, 1, 2);
  PackedShamir to = Make(13, 2, 3);
  auto [old_shares, secrets] = ShareBlocks(from, 1);
  EXPECT_THROW(ReferenceReshare(from, to, old_shares, rng_), InvalidArgument);
}

TEST_F(ReshareTest, ContributionIsMaskedPerContributor) {
  // The value one old party sends is uniform without the others: two runs
  // with different mask randomness differ even for identical shares.
  PackedShamir from = Make(8, 1, 2);
  PackedShamir to = Make(8, 1, 2);
  auto [old_shares, secrets] = ShareBlocks(from, 1);
  Rng rng_a(1), rng_b(2);
  auto a = ReferenceReshare(from, to, old_shares, rng_a);
  auto b = ReferenceReshare(from, to, old_shares, rng_b);
  EXPECT_FALSE(ctx_->Eq(a[0][0], b[0][0]));
  ExpectSecrets(to, a, secrets);
  ExpectSecrets(to, b, secrets);
}

// ---- decomposed execution-path API ----------------------------------------

TEST_F(ReshareTest, ContributionsVerifyAndCompose) {
  PackedShamir from = Make(8, 1, 2);
  PackedShamir to = Make(13, 3, 2);
  auto [old_shares, secrets] = ShareBlocks(from, 3);

  std::vector<std::uint32_t> contributors;
  for (std::uint32_t i = 0; i <= from.params().degree(); ++i) {
    contributors.push_back(i);
  }
  ResharePublic pub = MakeResharePublic(from, to, contributors);

  std::vector<std::vector<FpElem>> acc;
  for (std::size_t ord = 0; ord < contributors.size(); ++ord) {
    auto c = ReshareContribution(pub, ord, old_shares[contributors[ord]], rng_);
    ASSERT_TRUE(VerifyReshareContribution(pub, ord, c)) << "ordinal " << ord;
    AccumulateReshare(*ctx_, acc, c);
  }
  ExpectSecrets(to, acc, secrets);
}

TEST_F(ReshareTest, VerifierRejectsPerturbedContribution) {
  PackedShamir from = Make(8, 1, 2);
  PackedShamir to = Make(10, 2, 2);
  auto [old_shares, secrets] = ShareBlocks(from, 2);
  std::vector<std::uint32_t> contributors;
  for (std::uint32_t i = 0; i <= from.params().degree(); ++i) {
    contributors.push_back(i);
  }
  ResharePublic pub = MakeResharePublic(from, to, contributors);
  auto c = ReshareContribution(pub, 0, old_shares[0], rng_);
  ASSERT_TRUE(VerifyReshareContribution(pub, 0, c));

  // Equivocation analog: one recipient's evaluation is off the polynomial.
  auto bad = c;
  bad[3][1] = ctx_->Add(bad[3][1], ctx_->One());
  EXPECT_FALSE(VerifyReshareContribution(pub, 0, bad));

  // Random garbage of the right shape.
  auto noise = c;
  for (auto& row : noise) {
    for (auto& e : row) e = ctx_->Random(rng_);
  }
  EXPECT_FALSE(VerifyReshareContribution(pub, 0, noise));

  // Wrong shape is rejected outright, never indexed out of bounds.
  auto short_rows = c;
  short_rows.pop_back();
  EXPECT_FALSE(VerifyReshareContribution(pub, 0, short_rows));
}

TEST_F(ReshareTest, VerifierRejectsConsistentLowDegreeShiftForPackedBlocks) {
  // The corrupt-deal analog: a degree-respecting additive shift that changes
  // the dealt value. The column degree check passes; the beta-consistency
  // cross-check catches it because l >= 2 couples the shifted evaluations.
  // For l == 1 this freedom is genuinely unverifiable without commitments --
  // which is why every reshare drill runs l >= 2 (docs/resharding.md).
  PackedShamir from = Make(10, 2, 2);
  PackedShamir to = Make(10, 2, 2);
  auto [old_shares, secrets] = ShareBlocks(from, 1);
  std::vector<std::uint32_t> contributors;
  for (std::uint32_t i = 0; i <= from.params().degree(); ++i) {
    contributors.push_back(i);
  }
  ResharePublic pub = MakeResharePublic(from, to, contributors);
  auto c = ReshareContribution(pub, 0, old_shares[0], rng_);
  ASSERT_TRUE(VerifyReshareContribution(pub, 0, c));

  // Shift the whole column by a constant: still degree <= d', but the
  // implied evaluations at the betas no longer share the contributor's
  // secret-proportionality.
  auto shifted = c;
  for (auto& row : shifted) row[0] = ctx_->Add(row[0], ctx_->One());
  EXPECT_FALSE(VerifyReshareContribution(pub, 0, shifted));
}

TEST_F(ReshareTest, OracleAllStandardPrimeSizes) {
  for (std::size_t bits : {256u, 512u, 1024u, 2048u}) {
    auto ctx = std::make_shared<const FpCtx>(field::StandardPrimeBe(bits));
    Params fp;
    fp.n = 8;
    fp.t = 1;
    fp.l = 2;
    fp.field_bits = bits;
    Params tp = fp;
    tp.n = 10;
    tp.t = 2;
    PackedShamir from(ctx, fp);
    PackedShamir to(ctx, tp);

    Rng rng(bits);
    std::vector<FpElem> secret{ctx->Random(rng), ctx->Random(rng)};
    auto block = from.ShareBlock(secret, rng);
    std::vector<std::vector<FpElem>> by_party(fp.n);
    for (std::size_t i = 0; i < fp.n; ++i) by_party[i] = {block[i]};

    auto reshared = ReferenceReshare(from, to, by_party, rng);
    std::vector<std::uint32_t> parties;
    std::vector<FpElem> sh;
    for (std::uint32_t i = 0; i < tp.n; ++i) {
      parties.push_back(i);
      sh.push_back(reshared[i][0]);
    }
    ASSERT_TRUE(to.ConsistentShares(parties, sh)) << bits << "-bit";
    auto rec = to.ReconstructBlock(parties, sh);
    for (std::size_t j = 0; j < tp.l; ++j) {
      EXPECT_TRUE(ctx->Eq(rec[j], secret[j])) << bits << "-bit, secret " << j;
    }
  }
}

}  // namespace
}  // namespace pisces::pss

// ---- differential: cluster-driven reshare vs the oracle --------------------

namespace pisces {
namespace {

using field::FpElem;

ClusterConfig ReshareClusterConfig(std::size_t n, std::size_t t,
                                   std::uint64_t seed, std::size_t bits = 256) {
  ClusterConfig cfg;
  cfg.params.n = n;
  cfg.params.t = t;
  cfg.params.l = 2;  // l >= 2: reshare verification needs packed blocks
  cfg.params.field_bits = bits;
  cfg.seed = seed;
  return cfg;
}

Bytes DeterministicFile(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  return rng.RandomBytes(size);
}

// Per-party share snapshot of every file on the first `n` hosts.
std::map<std::uint64_t, std::vector<std::vector<FpElem>>> SnapshotShares(
    Cluster& cluster, std::size_t n) {
  std::map<std::uint64_t, std::vector<std::vector<FpElem>>> out;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint64_t id : cluster.host(i).store().FileIds()) {
      auto& slot = out[id];
      if (slot.size() < n) slot.resize(n);
      slot[i] = cluster.host(i).store().Load(id);
    }
  }
  return out;
}

// Reconstructs every block's secrets from a full per-party share snapshot.
std::vector<std::vector<FpElem>> SecretsOf(
    const pss::PackedShamir& scheme,
    const std::vector<std::vector<FpElem>>& by_party) {
  const std::size_t blocks = by_party.at(0).size();
  std::vector<std::uint32_t> parties;
  for (std::uint32_t i = 0; i < scheme.params().n; ++i) parties.push_back(i);
  std::vector<std::vector<FpElem>> secrets;
  for (std::size_t b = 0; b < blocks; ++b) {
    std::vector<FpElem> sh;
    for (std::uint32_t i : parties) sh.push_back(by_party[i][b]);
    secrets.push_back(scheme.ReconstructBlock(parties, sh));
  }
  return secrets;
}

class ReshareClusterTest : public ::testing::Test {
 protected:
  // Uploads `files` deterministic files and returns their download images.
  std::map<std::uint64_t, Bytes> Seed(Cluster& cluster, std::size_t files) {
    std::map<std::uint64_t, Bytes> images;
    for (std::uint64_t id = 1; id <= files; ++id) {
      Bytes data = DeterministicFile(400 + 97 * id, id);
      cluster.Upload(id, data);
      images[id] = std::move(data);
    }
    return images;
  }

  // Bit-identical downloads against the recorded images.
  void ExpectDownloads(Cluster& cluster,
                       const std::map<std::uint64_t, Bytes>& images) {
    for (const auto& [id, data] : images) {
      EXPECT_EQ(cluster.Download(ReadSpec::Classic(id)), data)
          << "file " << id;
    }
  }
};

TEST_F(ReshareClusterTest, GrowMatchesOracleWithoutReconstruction) {
  Cluster cluster(ReshareClusterConfig(8, 1, 77));
  auto images = Seed(cluster, 3);

  const pss::PackedShamir from(cluster.ctx_ptr(), cluster.config().params);
  auto before = SnapshotShares(cluster, 8);

  pss::Params to = cluster.config().params;
  to.n = 13;
  to.t = 3;
  const obs::Snapshot snap = obs::TakeSnapshot();
  ReshareReport report = cluster.Reshare(to);
  const obs::Snapshot delta = obs::Delta(snap, obs::TakeSnapshot());

  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.files, 3u);
  EXPECT_EQ(report.hosts_added, 5u);
  EXPECT_EQ(report.contributions_rejected, 0u);

  // The no-reconstruction invariant, asserted two ways: the obs counters saw
  // one migration and zero full-file reconstructions, and not one byte of
  // reconstruct-request or recovery masked-share traffic moved.
  EXPECT_EQ(obs::Value(delta, "reshare.migrations"), 1u);
  EXPECT_EQ(obs::Value(delta, "reshare.files"), 3u);
  EXPECT_EQ(obs::Value(delta, std::string("net.bytes_sent.") +
                                  net::MsgTypeName(
                                      net::MsgType::kReconstructRequest)),
            0u);
  EXPECT_EQ(obs::Value(delta, std::string("net.bytes_sent.") +
                                  net::MsgTypeName(net::MsgType::kMaskedShare)),
            0u);

  // Differential against the oracle: the new sharing holds exactly the
  // secrets the old one held (ReferenceReshare is the spec of "same secrets,
  // new group"), and the files decode bit-identically.
  const pss::PackedShamir to_scheme(cluster.ctx_ptr(), to);
  auto after = SnapshotShares(cluster, 13);
  ASSERT_EQ(after.size(), before.size());
  for (const auto& [id, old_shares] : before) {
    auto oracle_secrets = SecretsOf(from, old_shares);
    auto live_secrets = SecretsOf(to_scheme, after.at(id));
    ASSERT_EQ(live_secrets.size(), oracle_secrets.size()) << "file " << id;
    for (std::size_t b = 0; b < oracle_secrets.size(); ++b) {
      for (std::size_t j = 0; j < oracle_secrets[b].size(); ++j) {
        EXPECT_TRUE(
            cluster.ctx().Eq(live_secrets[b][j], oracle_secrets[b][j]))
            << "file " << id << " block " << b << " secret " << j;
      }
    }
  }
  ExpectDownloads(cluster, images);

  // The grown fleet is a fully functional PSS group: refresh + reboot run.
  EXPECT_TRUE(cluster.RunUpdateWindow().ok);
  ExpectDownloads(cluster, images);
}

TEST_F(ReshareClusterTest, ShrinkKeepsEverySecretAndDownload) {
  Cluster cluster(ReshareClusterConfig(13, 3, 78));
  auto images = Seed(cluster, 2);
  const pss::PackedShamir from(cluster.ctx_ptr(), cluster.config().params);
  auto before = SnapshotShares(cluster, 13);

  pss::Params to = cluster.config().params;
  to.n = 8;
  to.t = 1;
  ReshareReport report = cluster.Reshare(to);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.hosts_retired, 5u);

  const pss::PackedShamir to_scheme(cluster.ctx_ptr(), to);
  auto after = SnapshotShares(cluster, 8);
  for (const auto& [id, old_shares] : before) {
    auto oracle_secrets = SecretsOf(from, old_shares);
    auto live_secrets = SecretsOf(to_scheme, after.at(id));
    for (std::size_t b = 0; b < oracle_secrets.size(); ++b) {
      for (std::size_t j = 0; j < oracle_secrets[b].size(); ++j) {
        EXPECT_TRUE(
            cluster.ctx().Eq(live_secrets[b][j], oracle_secrets[b][j]));
      }
    }
  }
  ExpectDownloads(cluster, images);
  EXPECT_TRUE(cluster.RunUpdateWindow().ok);
  ExpectDownloads(cluster, images);
}

TEST_F(ReshareClusterTest, DegenerateReshareRerandomizesInPlace) {
  Cluster cluster(ReshareClusterConfig(10, 2, 79));
  auto images = Seed(cluster, 2);
  auto before = SnapshotShares(cluster, 10);

  // Same shape: a pure redistribution round (the autoscaler's re-provision
  // primitive). Every share must change; every secret and byte must not.
  ReshareReport report = cluster.Reshare(cluster.config().params);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.hosts_added, 0u);
  EXPECT_EQ(report.hosts_retired, 0u);

  auto after = SnapshotShares(cluster, 10);
  for (const auto& [id, old_shares] : before) {
    for (std::size_t i = 0; i < old_shares.size(); ++i) {
      for (std::size_t b = 0; b < old_shares[i].size(); ++b) {
        EXPECT_FALSE(cluster.ctx().Eq(after.at(id)[i][b], old_shares[i][b]))
            << "share unchanged: file " << id << " host " << i;
      }
    }
  }
  ExpectDownloads(cluster, images);
}

TEST_F(ReshareClusterTest, AllStandardPrimeSizes) {
  for (std::size_t bits : {256u, 512u, 1024u, 2048u}) {
    Cluster cluster(ReshareClusterConfig(8, 1, 80 + bits, bits));
    auto images = Seed(cluster, 1);
    pss::Params to = cluster.config().params;
    to.n = 10;
    to.t = 2;
    EXPECT_TRUE(cluster.Reshare(to).ok) << bits << "-bit";
    ExpectDownloads(cluster, images);
  }
}

TEST_F(ReshareClusterTest, PoolSizeBitIdentity) {
  // The migrated share material must be a pure function of the seed: pool
  // width is a wall-clock knob, never a value knob (the determinism contract
  // of common/task_pool.h), including across a live reshare.
  auto run = [&](std::size_t threads) {
    SetGlobalPoolThreads(threads);
    Cluster cluster(ReshareClusterConfig(8, 1, 81));
    Seed(cluster, 2);
    pss::Params to = cluster.config().params;
    to.n = 12;
    to.t = 2;
    EXPECT_TRUE(cluster.Reshare(to).ok);
    std::map<std::uint64_t, std::vector<std::vector<Bytes>>> image;
    for (const auto& [id, shares] : SnapshotShares(cluster, 12)) {
      auto& file_image = image[id];
      for (const auto& host_shares : shares) {
        file_image.push_back({});
        for (const FpElem& e : host_shares) {
          file_image.back().push_back(cluster.ctx().ToBytes(e));
        }
      }
    }
    return image;
  };
  const auto one = run(1);
  const auto two = run(2);
  const auto eight = run(8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST_F(ReshareClusterTest, EquivocatingContributorExcludedAndRetried) {
  Cluster cluster(ReshareClusterConfig(10, 2, 82));
  auto images = Seed(cluster, 2);

  ByzantinePlan plan;
  plan.seed = 5;
  plan.hosts[2] = ByzantineStrategy::kEquivocate;
  cluster.ArmByzantine(plan);

  pss::Params to = cluster.config().params;
  to.n = 12;
  ReshareReport report = cluster.Reshare(to);
  cluster.DisarmByzantine();

  // The tampered contribution failed public verification; the offender was
  // excluded and the file's round re-ran with honest contributors.
  EXPECT_TRUE(report.ok);
  EXPECT_GE(report.contributions_rejected, 1u);
  EXPECT_GE(report.retries, 1u);
  ExpectDownloads(cluster, images);
}

TEST_F(ReshareClusterTest, SilentContributorToleratedViaRetry) {
  Cluster cluster(ReshareClusterConfig(10, 2, 83));
  auto images = Seed(cluster, 1);

  ByzantinePlan plan;
  plan.seed = 6;
  plan.hosts[1] = ByzantineStrategy::kWithhold;
  cluster.ArmByzantine(plan);

  ReshareReport report = cluster.Reshare(cluster.config().params);
  cluster.DisarmByzantine();

  EXPECT_TRUE(report.ok);
  EXPECT_GE(report.contributions_withheld, 1u);
  ExpectDownloads(cluster, images);
}

TEST_F(ReshareClusterTest, MismatchedPackingOrFieldRefused) {
  Cluster cluster(ReshareClusterConfig(8, 1, 84));
  Seed(cluster, 1);
  pss::Params bad_l = cluster.config().params;
  bad_l.n = 13;
  bad_l.t = 2;
  bad_l.l = 3;
  EXPECT_THROW(cluster.Reshare(bad_l), Error);
  pss::Params bad_field = cluster.config().params;
  bad_field.field_bits = 512;
  EXPECT_THROW(cluster.Reshare(bad_field), Error);
}

}  // namespace
}  // namespace pisces
