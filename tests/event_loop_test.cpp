// Reactor primitive tests: fd readiness, timers, cross-thread wakeup.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <thread>

#include "common/event_loop.h"

namespace pisces {
namespace {

struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    ::close(fds[0]);
    ::close(fds[1]);
  }
  int rd() const { return fds[0]; }
  int wr() const { return fds[1]; }
};

TEST(EventLoop, FdReadableCallback) {
  EventLoop loop;
  Pipe p;
  int fired = 0;
  loop.AddFd(p.rd(), EventLoop::kReadable, [&](std::uint32_t events) {
    EXPECT_TRUE(events & EventLoop::kReadable);
    char c;
    EXPECT_EQ(::read(p.rd(), &c, 1), 1);
    EXPECT_EQ(c, 'x');
    ++fired;
  });
  EXPECT_EQ(loop.PollOnce(0), 0u);  // nothing ready yet
  EXPECT_EQ(::write(p.wr(), "x", 1), 1);
  EXPECT_EQ(loop.PollOnce(1000), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(EventLoop, UpdateAndRemoveFd) {
  EventLoop loop;
  Pipe p;
  int fired = 0;
  loop.AddFd(p.rd(), EventLoop::kReadable, [&](std::uint32_t) {
    char c;
    (void)::read(p.rd(), &c, 1);
    ++fired;
  });
  EXPECT_TRUE(loop.WatchesFd(p.rd()));

  // Interest off: readable data must not fire the callback.
  loop.UpdateFd(p.rd(), 0);
  EXPECT_EQ(::write(p.wr(), "a", 1), 1);
  loop.PollOnce(20);
  EXPECT_EQ(fired, 0);

  loop.UpdateFd(p.rd(), EventLoop::kReadable);
  EXPECT_EQ(loop.PollOnce(1000), 1u);
  EXPECT_EQ(fired, 1);

  loop.RemoveFd(p.rd());
  EXPECT_FALSE(loop.WatchesFd(p.rd()));
  EXPECT_EQ(::write(p.wr(), "b", 1), 1);
  loop.PollOnce(20);
  EXPECT_EQ(fired, 1);
}

TEST(EventLoop, TimersFireInDeadlineOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.AddTimer(40, [&] { order.push_back(2); });
  loop.AddTimer(5, [&] { order.push_back(1); });
  const auto start = std::chrono::steady_clock::now();
  while (order.size() < 2 &&
         std::chrono::steady_clock::now() - start < std::chrono::seconds(5)) {
    loop.PollOnce(100);
  }
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(EventLoop, CancelTimer) {
  EventLoop loop;
  bool fired = false;
  const std::uint64_t token = loop.AddTimer(5, [&] { fired = true; });
  loop.CancelTimer(token);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  loop.PollOnce(0);
  EXPECT_FALSE(fired);
}

TEST(EventLoop, TimerMayRescheduleItself) {
  EventLoop loop;
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < 3) loop.AddTimer(1, tick);
  };
  loop.AddTimer(1, tick);
  const auto start = std::chrono::steady_clock::now();
  while (ticks < 3 &&
         std::chrono::steady_clock::now() - start < std::chrono::seconds(5)) {
    loop.PollOnce(50);
  }
  EXPECT_EQ(ticks, 3);
}

TEST(EventLoop, WakeupInterruptsBlockedPoll) {
  EventLoop loop;
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    loop.Wakeup();
  });
  const auto start = std::chrono::steady_clock::now();
  loop.PollOnce(10'000);  // would block 10 s without the wakeup
  const auto waited = std::chrono::steady_clock::now() - start;
  waker.join();
  EXPECT_LT(waited, std::chrono::seconds(5));
}

TEST(EventLoop, StopEndsRun) {
  EventLoop loop;
  std::thread runner([&] { loop.Run(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  loop.Stop();
  runner.join();
  EXPECT_TRUE(loop.stopped());
}

}  // namespace
}  // namespace pisces
