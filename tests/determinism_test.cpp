// Reproducibility properties: the entire system is deterministic given a
// seed -- the property the paper's benchmarking methodology depends on, and
// the reason every figure in bench/ is exactly re-runnable.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/task_pool.h"
#include "obs/trace.h"
#include "pisces/pisces.h"
#include "trace_util.h"

namespace pisces {
namespace {

ClusterConfig Config(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.params.n = 8;
  cfg.params.t = 1;
  cfg.params.l = 2;
  cfg.params.r = 2;
  cfg.params.field_bits = 256;
  cfg.seed = seed;
  return cfg;
}

TEST(Determinism, IdenticalSeedsProduceIdenticalRuns) {
  auto run = [](std::uint64_t seed) {
    Cluster cluster(Config(seed));
    Rng rng(99);
    Bytes file = rng.RandomBytes(1500);
    cluster.Upload(1, file);
    cluster.ResetMetrics();
    WindowReport report = cluster.RunUpdateWindow();
    HostMetrics m = cluster.TotalMetrics();
    return std::tuple{report.ok, m.rerandomize.bytes_sent,
                      m.recover.bytes_sent, m.rerandomize.msgs_sent,
                      m.recover.msgs_sent, cluster.Download(pisces::ReadSpec::Classic(1))};
  };
  auto a = run(42);
  auto b = run(42);
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsProduceDifferentShares) {
  Cluster c1(Config(1));
  Cluster c2(Config(2));
  Rng rng(5);
  Bytes file = rng.RandomBytes(400);
  c1.Upload(1, file);
  c2.Upload(1, file);
  auto s1 = c1.host(0).store().Load(1);
  auto s2 = c2.host(0).store().Load(1);
  c1.host(0).store().Stash(1);
  c2.host(0).store().Stash(1);
  EXPECT_NE(s1, s2);  // share randomness differs...
  EXPECT_EQ(c1.Download(pisces::ReadSpec::Classic(1)), c2.Download(pisces::ReadSpec::Classic(1)));  // ...but contents agree
}

TEST(Determinism, ExperimentDriverIsReproducibleOnBytes) {
  ExperimentConfig cfg;
  cfg.params.n = 8;
  cfg.params.t = 1;
  cfg.params.l = 2;
  cfg.params.r = 2;
  cfg.params.field_bits = 256;
  cfg.file_bytes = 2048;
  cfg.seed = 7;
  ExperimentResult a = RunRefreshExperiment(cfg);
  ExperimentResult b = RunRefreshExperiment(cfg);
  EXPECT_TRUE(a.ok);
  EXPECT_TRUE(b.ok);
  // Byte/message counts are exact and must match; CPU seconds are physical
  // measurements and may differ.
  EXPECT_EQ(a.bytes_rerand, b.bytes_rerand);
  EXPECT_EQ(a.bytes_recover, b.bytes_recover);
  EXPECT_EQ(a.msgs_rerand, b.msgs_rerand);
  EXPECT_EQ(a.msgs_recover, b.msgs_recover);
  EXPECT_EQ(a.sweeps_rerand, b.sweeps_rerand);
  EXPECT_EQ(a.sweeps_recover, b.sweeps_recover);
  EXPECT_EQ(a.file_blocks, b.file_blocks);
}

TEST(Determinism, RefreshRandomnessDiffersAcrossEpochs) {
  // Same cluster, two successive refreshes: the zero-sharings must differ
  // (the host RNG advances), otherwise refresh would be predictable.
  Cluster cluster(Config(3));
  Rng rng(11);
  cluster.Upload(1, rng.RandomBytes(600));
  auto s0 = cluster.host(2).store().Load(1);
  cluster.host(2).store().Stash(1);
  cluster.RefreshAllFiles();
  auto s1 = cluster.host(2).store().Load(1);
  cluster.host(2).store().Stash(1);
  cluster.RefreshAllFiles();
  auto s2 = cluster.host(2).store().Load(1);
  cluster.host(2).store().Stash(1);
  EXPECT_NE(s0, s1);
  EXPECT_NE(s1, s2);
  // The deltas themselves differ (not a constant pad).
  ASSERT_EQ(s1.size(), s2.size());
  bool delta_differs = false;
  const auto& ctx = cluster.ctx();
  for (std::size_t i = 0; i < s1.size(); ++i) {
    auto d1 = ctx.Sub(s1[i], s0[i]);
    auto d2 = ctx.Sub(s2[i], s1[i]);
    if (!ctx.Eq(d1, d2)) delta_differs = true;
  }
  EXPECT_TRUE(delta_differs);
}

TEST(Determinism, PoolSizeNeverChangesSharesOrTranscripts) {
  // The tentpole contract (docs/parallelism.md): any pool size produces
  // bit-identical share stores, transcripts, and downloads. Run the same
  // seeded window at 1, 2, and 8 threads and compare everything exact.
  struct Observed {
    std::vector<std::vector<field::FpElem>> stores;  // per host, post-window
    bool ok = false;
    std::uint64_t bytes_rerand = 0, bytes_recover = 0;
    std::uint64_t msgs_rerand = 0, msgs_recover = 0;
    Bytes download;

    bool operator==(const Observed&) const = default;
  };
  auto run = [](std::size_t pool_threads) {
    SetGlobalPoolThreads(pool_threads);
    Cluster cluster(Config(42));
    Rng rng(99);
    Bytes file = rng.RandomBytes(1500);
    cluster.Upload(1, file);
    cluster.ResetMetrics();
    Observed o;
    o.ok = cluster.RunUpdateWindow().ok;
    HostMetrics m = cluster.TotalMetrics();
    o.bytes_rerand = m.rerandomize.bytes_sent;
    o.bytes_recover = m.recover.bytes_sent;
    o.msgs_rerand = m.rerandomize.msgs_sent;
    o.msgs_recover = m.recover.msgs_sent;
    for (std::size_t i = 0; i < 8; ++i) {
      o.stores.push_back(cluster.host(i).store().Load(1));
      cluster.host(i).store().Stash(1);
    }
    o.download = cluster.Download(pisces::ReadSpec::Classic(1));
    return o;
  };
  Observed one = run(1);
  Observed two = run(2);
  Observed eight = run(8);
  SetGlobalPoolThreads(1);
  EXPECT_TRUE(one.ok);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(Determinism, SpanIdsAreBitIdenticalAcrossPoolSizes) {
  // The trace id contract (src/obs/trace.h): protocol span ids are a pure
  // function of protocol structure, so the multiset of ids from the same
  // seeded window is bit-identical at any pool size. Task-pool chunk spans
  // (category "pool") are excluded -- their COUNT follows the chunk split --
  // but each chunk id is itself order-free, so the remaining multiset must
  // match exactly.
  auto span_ids = [](std::size_t pool_threads) {
    SetGlobalPoolThreads(pool_threads);
    obs::ResetTrace();
    obs::EnableTracing("");
    Cluster cluster(Config(42));
    Rng rng(99);
    cluster.Upload(1, rng.RandomBytes(1500));
    EXPECT_TRUE(cluster.RunUpdateWindow().ok);
    obs::DisableTracing();
    std::vector<std::uint64_t> ids;
    for (const auto& e : test::ParseTraceEvents(obs::TraceToJson())) {
      if (e.ph == 'X' && e.cat != "pool") ids.push_back(e.id);
    }
    obs::ResetTrace();
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  auto one = span_ids(1);
  auto two = span_ids(2);
  auto eight = span_ids(8);
  SetGlobalPoolThreads(1);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(Determinism, CsvRowsMatchAcrossPoolSizesOnNonTimingColumns) {
  // The figure benches' CSV must be reproducible under --threads: every
  // column except the physical timing measurements (and the thread count
  // itself, which is recorded on purpose) is identical at any pool size.
  const std::set<std::string> timing_cols{
      "threads",        "b",
      "cpu_rerand_s",   "cpu_recover_s",
      "wall_rerand_s",  "wall_recover_s",
      "compute_rerand_s", "compute_recover_s",
      "refresh_time_s", "window_time_s",
      "cost_dedicated_usd", "cost_spot_usd",
      // Weight-cache hits/misses depend on process history (the cache stays
      // warm across experiments by design), not on the pool size; the dot
      // counters by contrast are invariant and stay under the check.
      "wc_hits", "wc_misses"};
  auto row_for = [](std::size_t threads) {
    ExperimentConfig cfg;
    cfg.params.n = 8;
    cfg.params.t = 1;
    cfg.params.l = 2;
    cfg.params.r = 2;
    cfg.params.field_bits = 256;
    cfg.file_bytes = 2048;
    cfg.seed = 7;
    cfg.threads = threads;
    Recorder rec = MakeExperimentRecorder();
    RecordExperiment(rec, "det", RunRefreshExperiment(cfg));
    return std::pair{rec.columns(), rec.raw_rows().at(0)};
  };
  auto [cols1, row1] = row_for(1);
  auto [cols2, row2] = row_for(2);
  auto [cols8, row8] = row_for(8);
  SetGlobalPoolThreads(1);
  ASSERT_EQ(cols1, cols2);
  ASSERT_EQ(cols1, cols8);
  ASSERT_EQ(row1.size(), cols1.size());
  for (std::size_t c = 0; c < cols1.size(); ++c) {
    if (timing_cols.count(cols1[c]) > 0) continue;
    EXPECT_EQ(row1[c], row2[c]) << "column " << cols1[c] << " at 2 threads";
    EXPECT_EQ(row1[c], row8[c]) << "column " << cols1[c] << " at 8 threads";
  }
}

TEST(Determinism, ShardRoutingIsPureAcrossPoolSizesAndRestarts) {
  // The serving-plane shard map must be a pure function of
  // (file_id, shard_count): same result from any instance, any task-pool
  // size, and -- pinned by the golden triples below -- any process lifetime
  // (a restarted gateway routes every file to the shard that stores it).
  struct Pin {
    std::uint64_t id;
    std::uint32_t at2, at5;
  };
  const Pin pins[] = {
      {0ull, 1, 0},    {1ull, 1, 0},          {2ull, 0, 0},
      {42ull, 1, 3},   {1000ull, 0, 1},       {3735928559ull, 1, 2},
  };
  for (std::size_t pool_threads : {1, 2, 8}) {
    SetGlobalPoolThreads(pool_threads);
    ShardRouter two(2);
    ShardRouter five(5);
    for (const Pin& p : pins) {
      EXPECT_EQ(two.ShardOf(p.id), p.at2) << "id " << p.id;
      EXPECT_EQ(five.ShardOf(p.id), p.at5) << "id " << p.id;
      EXPECT_EQ(ShardRouter::Route(p.id, 2), p.at2);
      EXPECT_EQ(ShardRouter::Route(p.id, 5), p.at5);
    }
  }
  SetGlobalPoolThreads(1);
}

TEST(Determinism, ServingBatchedRefreshBitIdenticalAcrossPoolSizesAndRestarts) {
  // The serving plane's batched refresh must be deterministic on BYTES: the
  // post-refresh share vectors of every host on every shard, and every
  // download, identical across task-pool sizes and across plane re-creation
  // (the restart analog: a fresh object graph from the same seed).
  auto run = [](std::size_t pool_threads) {
    SetGlobalPoolThreads(pool_threads);
    ServingConfig cfg;
    cfg.shards = 2;
    cfg.params.n = 8;
    cfg.params.t = 1;
    cfg.params.l = 2;
    cfg.params.r = 2;
    cfg.params.field_bits = 256;
    cfg.seed = 21;
    ServingPlane plane(cfg);
    const std::uint64_t session = plane.OpenSession();
    Rng rng(77);
    for (std::uint64_t id = 1; id <= 6; ++id) {
      EXPECT_EQ(plane.Submit(session, net::ServingOp::kUpload, id,
                             rng.RandomBytes(700))
                    .status,
                net::ServingStatus::kOk);
    }
    plane.Drain();
    plane.TakeCompletions();
    EXPECT_TRUE(plane.BatchRefresh());

    std::vector<std::vector<field::FpElem>> shares;
    for (std::uint32_t s = 0; s < plane.shard_count(); ++s) {
      for (std::uint32_t h = 0; h < cfg.params.n; ++h) {
        ShareStore& store = plane.shard(s).host(h).store();
        for (std::uint64_t id : store.FileIds()) {
          shares.push_back(store.Load(id));
          store.Stash(id);
        }
      }
    }
    std::vector<Bytes> downloads;
    for (std::uint64_t id = 1; id <= 6; ++id) {
      plane.Submit(session, net::ServingOp::kDownload, id);
      plane.Drain();
      auto done = plane.TakeCompletions();
      EXPECT_EQ(done.size(), 1u);
      downloads.push_back(done[0].payload);
    }
    return std::pair{shares, downloads};
  };
  auto base = run(1);
  auto restarted = run(1);  // same pool: isolates the restart property
  auto pool2 = run(2);
  auto pool8 = run(8);
  SetGlobalPoolThreads(1);
  EXPECT_EQ(base, restarted);
  EXPECT_EQ(base, pool2);
  EXPECT_EQ(base, pool8);
}

TEST(Determinism, ServingPollBitIdenticalAcrossPoolSizes) {
  // Poll() executes whole shards concurrently but merges completions in
  // shard order, so the completion STREAM (everything but the physical
  // latency clocks), the stats ledger, and the live-file namespace must be
  // bit-identical across task-pool sizes -- including execution failures
  // and the deferred delete erasure.
  auto run = [](std::size_t pool_threads) {
    SetGlobalPoolThreads(pool_threads);
    ServingConfig cfg;
    cfg.shards = 3;
    cfg.params.n = 8;
    cfg.params.t = 1;
    cfg.params.l = 2;
    cfg.params.r = 2;
    cfg.params.field_bits = 256;
    cfg.seed = 33;
    cfg.max_inflight = 2;  // forces several polls per drain
    ServingPlane plane(cfg);
    const std::uint64_t session = plane.OpenSession();
    Rng rng(123);
    for (std::uint64_t id = 1; id <= 9; ++id) {
      plane.Submit(session, net::ServingOp::kUpload, id, rng.RandomBytes(500));
    }
    for (std::uint64_t id = 1; id <= 9; ++id) {
      plane.Submit(session, net::ServingOp::kDownload, id);
    }
    // Delete then download of the same id in one batch: the download is
    // admitted (the id is still live at offer time), ordered behind the
    // delete by the shard FIFO, and fails in execution -- covering the
    // kFailed completion path and the deferred namespace erasure.
    plane.Submit(session, net::ServingOp::kDelete, 4);
    plane.Submit(session, net::ServingOp::kDownload, 4);
    plane.Drain();
    plane.Submit(session, net::ServingOp::kDownload, 4);  // refused: deleted
    plane.Drain();

    // Project out the physical clocks; everything else must be exact.
    std::vector<std::tuple<std::uint64_t, std::uint64_t, net::ServingOp,
                           std::uint64_t, net::ServingStatus, Bytes>>
        stream;
    for (const ServingCompletion& c : plane.TakeCompletions()) {
      stream.emplace_back(c.session, c.request, c.op, c.file_id, c.status,
                          c.payload);
    }
    const ServingStats& st = plane.stats();
    std::vector<std::uint64_t> live;
    for (const auto& [id, shard] : plane.files()) {
      live.push_back(id);
      live.push_back(shard);
    }
    return std::tuple{stream, st.accepted, st.completed, st.failed,
                      st.refused, live};
  };
  auto base = run(1);
  auto pool2 = run(2);
  auto pool8 = run(8);
  SetGlobalPoolThreads(1);
  EXPECT_EQ(base, pool2);
  EXPECT_EQ(base, pool8);
}

}  // namespace
}  // namespace pisces
