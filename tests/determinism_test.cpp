// Reproducibility properties: the entire system is deterministic given a
// seed -- the property the paper's benchmarking methodology depends on, and
// the reason every figure in bench/ is exactly re-runnable.
#include <gtest/gtest.h>

#include "pisces/pisces.h"

namespace pisces {
namespace {

ClusterConfig Config(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.params.n = 8;
  cfg.params.t = 1;
  cfg.params.l = 2;
  cfg.params.r = 2;
  cfg.params.field_bits = 256;
  cfg.seed = seed;
  return cfg;
}

TEST(Determinism, IdenticalSeedsProduceIdenticalRuns) {
  auto run = [](std::uint64_t seed) {
    Cluster cluster(Config(seed));
    Rng rng(99);
    Bytes file = rng.RandomBytes(1500);
    cluster.Upload(1, file);
    cluster.ResetMetrics();
    WindowReport report = cluster.RunUpdateWindow();
    HostMetrics m = cluster.TotalMetrics();
    return std::tuple{report.ok, m.rerandomize.bytes_sent,
                      m.recover.bytes_sent, m.rerandomize.msgs_sent,
                      m.recover.msgs_sent, cluster.Download(1)};
  };
  auto a = run(42);
  auto b = run(42);
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsProduceDifferentShares) {
  Cluster c1(Config(1));
  Cluster c2(Config(2));
  Rng rng(5);
  Bytes file = rng.RandomBytes(400);
  c1.Upload(1, file);
  c2.Upload(1, file);
  auto s1 = c1.host(0).store().Load(1);
  auto s2 = c2.host(0).store().Load(1);
  c1.host(0).store().Stash(1);
  c2.host(0).store().Stash(1);
  EXPECT_NE(s1, s2);  // share randomness differs...
  EXPECT_EQ(c1.Download(1), c2.Download(1));  // ...but contents agree
}

TEST(Determinism, ExperimentDriverIsReproducibleOnBytes) {
  ExperimentConfig cfg;
  cfg.params.n = 8;
  cfg.params.t = 1;
  cfg.params.l = 2;
  cfg.params.r = 2;
  cfg.params.field_bits = 256;
  cfg.file_bytes = 2048;
  cfg.seed = 7;
  ExperimentResult a = RunRefreshExperiment(cfg);
  ExperimentResult b = RunRefreshExperiment(cfg);
  EXPECT_TRUE(a.ok);
  EXPECT_TRUE(b.ok);
  // Byte/message counts are exact and must match; CPU seconds are physical
  // measurements and may differ.
  EXPECT_EQ(a.bytes_rerand, b.bytes_rerand);
  EXPECT_EQ(a.bytes_recover, b.bytes_recover);
  EXPECT_EQ(a.msgs_rerand, b.msgs_rerand);
  EXPECT_EQ(a.msgs_recover, b.msgs_recover);
  EXPECT_EQ(a.sweeps_rerand, b.sweeps_rerand);
  EXPECT_EQ(a.sweeps_recover, b.sweeps_recover);
  EXPECT_EQ(a.file_blocks, b.file_blocks);
}

TEST(Determinism, RefreshRandomnessDiffersAcrossEpochs) {
  // Same cluster, two successive refreshes: the zero-sharings must differ
  // (the host RNG advances), otherwise refresh would be predictable.
  Cluster cluster(Config(3));
  Rng rng(11);
  cluster.Upload(1, rng.RandomBytes(600));
  auto s0 = cluster.host(2).store().Load(1);
  cluster.host(2).store().Stash(1);
  cluster.RefreshAllFiles();
  auto s1 = cluster.host(2).store().Load(1);
  cluster.host(2).store().Stash(1);
  cluster.RefreshAllFiles();
  auto s2 = cluster.host(2).store().Load(1);
  cluster.host(2).store().Stash(1);
  EXPECT_NE(s0, s1);
  EXPECT_NE(s1, s2);
  // The deltas themselves differ (not a constant pad).
  ASSERT_EQ(s1.size(), s2.size());
  bool delta_differs = false;
  const auto& ctx = cluster.ctx();
  for (std::size_t i = 0; i < s1.size(); ++i) {
    auto d1 = ctx.Sub(s1[i], s0[i]);
    auto d2 = ctx.Sub(s2[i], s1[i]);
    if (!ctx.Eq(d1, d2)) delta_differs = true;
  }
  EXPECT_TRUE(delta_differs);
}

}  // namespace
}  // namespace pisces
