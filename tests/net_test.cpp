// Message framing, simulated fabric, and synchrony-layer tests.
#include <gtest/gtest.h>

#include "net/message.h"
#include "net/sim_transport.h"
#include "net/sync_network.h"

namespace pisces::net {
namespace {

Message Make(std::uint32_t from, std::uint32_t to, MsgType type,
             Bytes payload = {}) {
  Message m;
  m.from = from;
  m.to = to;
  m.type = type;
  m.file_id = 9;
  m.epoch = 3;
  m.batch = 2;
  m.row = 1;
  m.payload = std::move(payload);
  return m;
}

TEST(Message, SerializeRoundTrip) {
  Message m = Make(4, 7, MsgType::kDeal, Bytes{1, 2, 3, 4, 5});
  Bytes wire = m.Serialize();
  Message back = Message::Deserialize(wire);
  EXPECT_EQ(back.from, 4u);
  EXPECT_EQ(back.to, 7u);
  EXPECT_EQ(back.type, MsgType::kDeal);
  EXPECT_EQ(back.file_id, 9u);
  EXPECT_EQ(back.epoch, 3u);
  EXPECT_EQ(back.batch, 2u);
  EXPECT_EQ(back.row, 1u);
  EXPECT_EQ(back.payload, (Bytes{1, 2, 3, 4, 5}));
  EXPECT_EQ(m.WireSize(), wire.size());
}

TEST(Message, RejectsGarbage) {
  Bytes junk{1, 2, 3};
  EXPECT_THROW(Message::Deserialize(junk), ParseError);
  Message m = Make(0, 1, MsgType::kVerdict);
  Bytes wire = m.Serialize();
  wire[8] = 0xEE;  // invalid type byte
  EXPECT_THROW(Message::Deserialize(wire), ParseError);
  wire = m.Serialize();
  wire.push_back(0);  // trailing byte
  EXPECT_THROW(Message::Deserialize(wire), ParseError);
}

TEST(SimNet, DeliversFifoPerLink) {
  SimNet net;
  auto* a = net.AddEndpoint(1);
  auto* b = net.AddEndpoint(2);
  a->Send(Make(1, 2, MsgType::kDeal, Bytes{1}));
  a->Send(Make(1, 2, MsgType::kDeal, Bytes{2}));
  auto m1 = b->Receive();
  auto m2 = b->Receive();
  ASSERT_TRUE(m1 && m2);
  EXPECT_EQ(m1->payload[0], 1);
  EXPECT_EQ(m2->payload[0], 2);
  EXPECT_FALSE(b->Receive().has_value());
}

TEST(SimNet, MetersBytes) {
  SimNet net;
  auto* a = net.AddEndpoint(1);
  net.AddEndpoint(2);
  Message m = Make(1, 2, MsgType::kDeal, Bytes(100, 7));
  const std::size_t wire = m.WireSize();
  a->Send(std::move(m));
  EXPECT_EQ(net.StatsFor(1).bytes_sent, wire);
  EXPECT_EQ(net.StatsFor(1).msgs_sent, 1u);
  EXPECT_EQ(net.StatsFor(2).bytes_received, wire);
  EXPECT_EQ(net.TotalBytes(), wire);
  net.ResetStats();
  EXPECT_EQ(net.TotalBytes(), 0u);
}

TEST(SimNet, OfflineDropsTraffic) {
  SimNet net;
  auto* a = net.AddEndpoint(1);
  auto* b = net.AddEndpoint(2);
  net.SetOffline(2, true);
  a->Send(Make(1, 2, MsgType::kDeal));
  EXPECT_FALSE(b->Receive().has_value());
  net.SetOffline(2, false);
  a->Send(Make(1, 2, MsgType::kDeal));
  EXPECT_TRUE(b->Receive().has_value());
  // Offline sender loses its own sends too.
  net.SetOffline(1, true);
  a->Send(Make(1, 2, MsgType::kDeal));
  EXPECT_FALSE(b->Receive().has_value());
}

TEST(SimNet, MutatorCanCorruptAndDrop) {
  SimNet net;
  auto* a = net.AddEndpoint(1);
  auto* b = net.AddEndpoint(2);
  net.SetMutator([](Message& m) {
    if (m.payload.size() == 1 && m.payload[0] == 0xBA) return false;  // drop
    if (!m.payload.empty()) m.payload[0] ^= 0xFF;
    return true;
  });
  a->Send(Make(1, 2, MsgType::kDeal, Bytes{0xBA}));
  EXPECT_FALSE(b->Receive().has_value());
  a->Send(Make(1, 2, MsgType::kDeal, Bytes{0x01}));
  auto m = b->Receive();
  ASSERT_TRUE(m);
  EXPECT_EQ(m->payload[0], 0xFE);
}

TEST(SimNet, SendFromWrongIdThrows) {
  SimNet net;
  auto* a = net.AddEndpoint(1);
  net.AddEndpoint(2);
  EXPECT_THROW(a->Send(Make(2, 1, MsgType::kDeal)), InvalidArgument);
}

TEST(SimNet, DuplicateEndpointThrows) {
  SimNet net;
  net.AddEndpoint(1);
  EXPECT_THROW(net.AddEndpoint(1), InvalidArgument);
}

// A handler that forwards a token around a ring a fixed number of times.
class RingHandler : public MessageHandler {
 public:
  RingHandler(Transport* t, std::uint32_t next, int limit)
      : t_(t), next_(next), limit_(limit) {}
  void HandleMessage(const Message& msg) override {
    ++received;
    if (static_cast<int>(msg.epoch) >= limit_) return;
    Message fwd = msg;
    fwd.from = t_->id();
    fwd.to = next_;
    fwd.epoch = msg.epoch + 1;
    t_->Send(std::move(fwd));
  }
  int received = 0;

 private:
  Transport* t_;
  std::uint32_t next_;
  int limit_;
};

TEST(SyncNetwork, PumpsToQuiescenceAndCountsSweeps) {
  SimNet net;
  SyncNetwork sync(net);
  std::vector<SimEndpoint*> eps;
  std::vector<std::unique_ptr<RingHandler>> handlers;
  const int kHops = 9;
  for (std::uint32_t i = 0; i < 3; ++i) eps.push_back(net.AddEndpoint(i));
  for (std::uint32_t i = 0; i < 3; ++i) {
    handlers.push_back(std::make_unique<RingHandler>(eps[i], (i + 1) % 3, kHops));
    sync.Register(i, eps[i], handlers[i].get());
  }
  Message kick = Make(0, 1, MsgType::kVerdict);
  kick.epoch = 0;
  eps[0]->Send(std::move(kick));
  auto result = sync.RunToQuiescence();
  int total = 0;
  for (auto& h : handlers) total += h->received;
  EXPECT_EQ(total, kHops + 1);
  EXPECT_GE(result.sweeps, 2u);
  EXPECT_EQ(result.deliveries, static_cast<std::uint64_t>(kHops + 1));
  EXPECT_FALSE(net.AnyPending());
}

TEST(SyncNetwork, LivelockGuardThrows) {
  SimNet net;
  SyncNetwork sync(net);
  auto* a = net.AddEndpoint(1);
  auto* b = net.AddEndpoint(2);
  // Two handlers that bounce a message forever.
  RingHandler ha(a, 2, 1 << 30), hb(b, 1, 1 << 30);
  sync.Register(1, a, &ha);
  sync.Register(2, b, &hb);
  a->Send(Make(1, 2, MsgType::kVerdict));
  EXPECT_THROW(sync.RunToQuiescence(/*max_sweeps=*/50), InternalError);
}

TEST(NetworkModel, TransferTime) {
  NetworkModel m;
  m.latency_s = 0.001;
  m.bandwidth_bytes_per_s = 1e6;
  EXPECT_DOUBLE_EQ(m.TransferTime(2'000'000, 3), 0.003 + 2.0);
}

}  // namespace
}  // namespace pisces::net
