// Restart schedule tests (paper SectionVI-D).
#include <gtest/gtest.h>

#include <set>

#include "pisces/schedule.h"

namespace pisces {
namespace {

TEST(RoundRobin, CompleteCoverageEveryWindow) {
  RoundRobinSchedule sched(13, 3);
  for (std::uint32_t w = 0; w < 5; ++w) {
    auto batches = sched.BatchesForWindow(w);
    std::set<std::uint32_t> seen;
    for (const auto& batch : batches) {
      EXPECT_LE(batch.size(), 3u);
      for (auto h : batch) {
        EXPECT_TRUE(seen.insert(h).second) << "host rebooted twice";
      }
    }
    EXPECT_EQ(seen.size(), 13u) << "complete schedule must cover every host";
  }
}

TEST(RoundRobin, BatchBoundariesRotateAcrossWindows) {
  RoundRobinSchedule sched(10, 2);
  auto w0 = sched.BatchesForWindow(0);
  auto w1 = sched.BatchesForWindow(1);
  EXPECT_NE(w0.front(), w1.front());
}

TEST(RoundRobin, BatchCount) {
  RoundRobinSchedule sched(10, 3);
  EXPECT_EQ(sched.BatchesForWindow(0).size(), 4u);  // ceil(10/3)
  RoundRobinSchedule even(12, 3);
  EXPECT_EQ(even.BatchesForWindow(0).size(), 4u);
}

TEST(Randomized, CoversAllHostsWithinWindow) {
  RandomizedSchedule sched(11, 4, 99);
  for (std::uint32_t w = 0; w < 3; ++w) {
    auto batches = sched.BatchesForWindow(w);
    std::set<std::uint32_t> seen;
    for (const auto& batch : batches) {
      EXPECT_LE(batch.size(), 4u);
      for (auto h : batch) seen.insert(h);
    }
    // Our randomized schedule shuffles a full permutation, so coverage within
    // a window is still complete -- the randomness is in the grouping/order.
    EXPECT_EQ(seen.size(), 11u);
  }
}

TEST(Randomized, OrderVariesAcrossWindows) {
  RandomizedSchedule sched(16, 4, 7);
  auto w0 = sched.BatchesForWindow(0);
  auto w1 = sched.BatchesForWindow(1);
  EXPECT_NE(w0, w1);  // overwhelmingly likely
}

TEST(Randomized, DeterministicGivenSeed) {
  RandomizedSchedule a(16, 4, 123), b(16, 4, 123);
  EXPECT_EQ(a.BatchesForWindow(0), b.BatchesForWindow(0));
  RandomizedSchedule c(16, 4, 124);
  EXPECT_NE(a.BatchesForWindow(1), c.BatchesForWindow(1));
}

TEST(MakeSchedule, FactoryAndValidation) {
  EXPECT_STREQ(MakeSchedule("round-robin", 8, 2, 1)->Name(), "round-robin");
  EXPECT_STREQ(MakeSchedule("randomized", 8, 2, 1)->Name(), "randomized");
  EXPECT_THROW(MakeSchedule("chaotic", 8, 2, 1), InvalidArgument);
  EXPECT_THROW(RoundRobinSchedule(4, 4), InvalidArgument);
  EXPECT_THROW(RoundRobinSchedule(4, 0), InvalidArgument);
}

}  // namespace
}  // namespace pisces
