// Open-loop serving-plane load drill (ctest label: serving).
//
// A deterministic virtual-tick generator offers MORE load than the plane's
// configured service rate -- the open-loop discipline: arrivals keep coming
// whether or not earlier requests finished -- against a 2-shard in-process
// cluster, with a batched proactive refresh fired mid-drill. Asserts the
// serving plane's contract under overload:
//
//   no loss        every accepted request produces exactly one completion,
//                  every completed download is bit-exact against the
//                  reference copy, and after the drill every live file is
//                  stored on its routed shard and NOWHERE else;
//   bounded shed   admission control rejects (with a retry-after hint)
//                  rather than buffering without bound: rejections happen
//                  under overload, queues never exceed capacity, and
//                  everything accepted still completes;
//   deadline       accepted requests finish within a generous per-request
//                  latency deadline even at peak backlog.
//
// Replay: the drill is seed-deterministic; run tests/serving_drill --seed S
// to reproduce a failure, --verbose for per-tick accounting.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "pisces/pisces.h"

namespace pisces {
namespace {

using net::ServingOp;
using net::ServingStatus;

struct DrillOptions {
  std::uint64_t seed = 2026;
  std::size_t ticks = 120;
  std::size_t ops_per_tick = 6;  // offered load; service rate is 4/tick
  bool verbose = false;
};

#define DRILL_CHECK(cond, ...)                                       \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::printf("FAIL %s:%d: %s\n", __FILE__, __LINE__, #cond);    \
      std::printf("  " __VA_ARGS__);                                 \
      std::printf("\n");                                             \
      return false;                                                  \
    }                                                                \
  } while (0)

bool RunDrill(const DrillOptions& opt) {
  ServingConfig cfg;
  cfg.shards = 2;
  cfg.params.n = 8;
  cfg.params.t = 1;
  cfg.params.l = 2;
  cfg.params.r = 2;
  cfg.params.field_bits = 256;
  cfg.seed = opt.seed;
  cfg.admission_capacity = 16;
  cfg.max_inflight = 2;  // service rate = shards * max_inflight = 4 ops/tick
  cfg.retry_after_ms = 5;
  ServingPlane plane(cfg);
  Rng rng(opt.seed ^ 0x5E21);

  const std::uint64_t session = plane.OpenSession();

  // Reference model: what a correct plane must serve. `content` keeps every
  // byte ever uploaded; `live` tracks admission-order liveness (an accepted
  // delete kills the id the moment it is admitted, because the shard queue
  // is FIFO: nothing admitted later can observe the file alive).
  std::map<std::uint64_t, Bytes> content;
  std::set<std::uint64_t> live;
  std::uint64_t next_file = 1;

  auto upload = [&](bool must_accept) -> bool {
    const std::uint64_t id = next_file++;
    Bytes data = rng.RandomBytes(256 + rng.Below(1024));
    auto adm = plane.Submit(session, ServingOp::kUpload, id, data);
    if (adm.status == ServingStatus::kOk) {
      content[id] = std::move(data);
      live.insert(id);
      return true;
    }
    return !must_accept && adm.status == ServingStatus::kRejected;
  };

  // Preload a namespace so downloads have targets from tick zero.
  for (int k = 0; k < 10; ++k) {
    if (!upload(/*must_accept=*/true)) {
      std::printf("FAIL: preload upload refused\n");
      return false;
    }
    plane.Drain();
  }

  std::uint64_t offered = 0, rejects_seen = 0;
  std::size_t completions_seen = 0;
  std::uint64_t max_latency_ns = 0, max_queue_ns = 0;
  bool refreshed = false;

  auto absorb = [&](std::vector<ServingCompletion> batch) -> bool {
    for (const ServingCompletion& c : batch) {
      ++completions_seen;
      DRILL_CHECK(c.status == ServingStatus::kOk,
                  "request %llu (%s, file %llu) failed: %s",
                  static_cast<unsigned long long>(c.request),
                  net::ServingOpName(c.op),
                  static_cast<unsigned long long>(c.file_id),
                  pisces::StatusName(c.status));
      if (c.op == ServingOp::kDownload) {
        DRILL_CHECK(c.payload == content.at(c.file_id),
                    "download of file %llu returned wrong bytes",
                    static_cast<unsigned long long>(c.file_id));
      }
      if (c.latency_ns > max_latency_ns) max_latency_ns = c.latency_ns;
      if (c.queue_ns > max_queue_ns) max_queue_ns = c.queue_ns;
    }
    return true;
  };

  auto pick_live = [&]() -> std::uint64_t {
    // Deterministic pick: k-th element of the ordered live set.
    auto it = live.begin();
    std::advance(it, static_cast<long>(rng.Below(live.size())));
    return *it;
  };

  for (std::size_t tick = 0; tick < opt.ticks; ++tick) {
    // Offer ops_per_tick arrivals regardless of backlog (open loop).
    for (std::size_t k = 0; k < opt.ops_per_tick; ++k) {
      ++offered;
      const std::uint64_t dice = rng.Below(100);
      if (dice < 15 || live.empty()) {
        DRILL_CHECK(upload(/*must_accept=*/false),
                    "upload neither accepted nor queue-full rejected");
      } else if (dice < 90) {
        const std::uint64_t id = pick_live();
        auto adm = plane.Submit(session, ServingOp::kDownload, id);
        DRILL_CHECK(adm.status == ServingStatus::kOk ||
                        adm.status == ServingStatus::kRejected,
                    "download of live file %llu refused: %s",
                    static_cast<unsigned long long>(id),
                    pisces::StatusName(adm.status));
        if (adm.status == ServingStatus::kRejected) {
          DRILL_CHECK(adm.retry_after_ms >= cfg.retry_after_ms,
                      "reject without a usable retry-after hint");
        }
      } else {
        const std::uint64_t id = pick_live();
        auto adm = plane.Submit(session, ServingOp::kDelete, id);
        if (adm.status == ServingStatus::kOk) live.erase(id);
      }
      // Bounded buffering is the whole point of admission control.
      for (std::uint32_t s = 0; s < plane.shard_count(); ++s) {
        DRILL_CHECK(plane.QueueDepth(s) <= cfg.admission_capacity,
                    "shard %u queue exceeded capacity", s);
      }
    }

    // Service one scheduling quantum and absorb whatever finished.
    plane.Poll();
    if (!absorb(plane.TakeCompletions())) return false;

    // Proactive window fires mid-drill, on top of live queued work.
    if (!refreshed && tick == opt.ticks / 2) {
      if (!absorb(plane.TakeCompletions())) return false;
      DRILL_CHECK(plane.BatchRefresh(), "mid-drill batched refresh failed");
      refreshed = true;
    }

    if (opt.verbose && tick % 20 == 0) {
      std::printf("tick %3zu: offered=%llu accepted=%llu rejected=%llu "
                  "queued=%zu\n",
                  tick, static_cast<unsigned long long>(offered),
                  static_cast<unsigned long long>(plane.stats().accepted),
                  static_cast<unsigned long long>(plane.stats().rejected),
                  plane.TotalQueued());
    }
  }

  plane.Drain();
  if (!absorb(plane.TakeCompletions())) return false;
  const ServingStats& st = plane.stats();

  // --- accounting: nothing lost, nothing invented -------------------------
  DRILL_CHECK(st.failed == 0, "accepted requests failed in execution");
  DRILL_CHECK(st.completed == st.accepted,
              "accepted=%llu completed=%llu: requests lost or duplicated",
              static_cast<unsigned long long>(st.accepted),
              static_cast<unsigned long long>(st.completed));
  DRILL_CHECK(completions_seen == st.completed,
              "completion records do not match the completed counter");
  // Every Submit was the 10 preload uploads plus the open-loop arrivals, and
  // each landed in exactly one ledger bucket.
  DRILL_CHECK(st.accepted + st.rejected + st.refused == offered + 10,
              "admission ledger does not cover the offered load");

  // --- overload shed, but bounded -----------------------------------------
  DRILL_CHECK(st.rejected > 0,
              "open-loop overload never tripped admission control");
  DRILL_CHECK(st.rejected < offered / 2,
              "admission shed more than half the offered load");
  DRILL_CHECK(st.queue_peak <= cfg.admission_capacity,
              "queue peak %llu exceeded capacity",
              static_cast<unsigned long long>(st.queue_peak));
  rejects_seen = st.rejected;

  // --- refresh actually covered the namespace -----------------------------
  DRILL_CHECK(refreshed && st.refresh_batches > 0 && st.refresh_files > 0,
              "mid-drill refresh did not launch");

  // --- zero lost / duplicated files ---------------------------------------
  DRILL_CHECK(plane.files().size() == live.size(),
              "plane namespace (%zu) disagrees with the reference (%zu)",
              plane.files().size(), live.size());
  const std::uint32_t n = cfg.params.n;
  for (const std::uint64_t id : live) {
    auto adm = plane.Submit(session, ServingOp::kDownload, id);
    DRILL_CHECK(adm.status == ServingStatus::kOk,
                "post-drill download of live file %llu refused",
                static_cast<unsigned long long>(id));
    plane.Drain();
    auto done = plane.TakeCompletions();
    DRILL_CHECK(done.size() == 1 && done[0].status == ServingStatus::kOk &&
                    done[0].payload == content.at(id),
                "post-drill download of file %llu not bit-exact",
                static_cast<unsigned long long>(id));
    const std::uint32_t home = plane.ShardOf(id);
    for (std::uint32_t s = 0; s < plane.shard_count(); ++s) {
      for (std::uint32_t h = 0; h < n; ++h) {
        DRILL_CHECK(plane.shard(s).host(h).store().Has(id) == (s == home),
                    "file %llu misplaced: shard %u host %u",
                    static_cast<unsigned long long>(id), s, h);
      }
    }
  }

  // --- deadline: even peak-backlog requests finished promptly -------------
  // Virtual ticks run as fast as the CPU allows; 30s of wall time per
  // request is a generous bound that still catches a wedged queue.
  constexpr std::uint64_t kDeadlineNs = 30ull * 1000 * 1000 * 1000;
  DRILL_CHECK(max_latency_ns < kDeadlineNs,
              "worst accepted-request latency blew the deadline");
  DRILL_CHECK(max_queue_ns <= max_latency_ns, "queue time exceeds latency");

  std::printf(
      "serving_drill: seed=%llu offered=%llu accepted=%llu completed=%llu "
      "rejected=%llu refused=%llu queue_peak=%llu refresh_batches=%llu "
      "live_files=%zu max_latency_ms=%.2f\n",
      static_cast<unsigned long long>(opt.seed),
      static_cast<unsigned long long>(offered),
      static_cast<unsigned long long>(st.accepted),
      static_cast<unsigned long long>(st.completed),
      static_cast<unsigned long long>(rejects_seen),
      static_cast<unsigned long long>(st.refused),
      static_cast<unsigned long long>(st.queue_peak),
      static_cast<unsigned long long>(st.refresh_batches), live.size(),
      static_cast<double>(max_latency_ns) / 1e6);
  return true;
}

int Main(int argc, char** argv) {
  DrillOptions opt;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seed") == 0) {
      opt.seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--ticks") == 0) {
      opt.ticks = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--ops-per-tick") == 0) {
      opt.ops_per_tick = std::strtoul(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      opt.verbose = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (!RunDrill(opt)) {
    std::printf("REPLAY: tests/serving_drill --seed %llu --verbose\n",
                static_cast<unsigned long long>(opt.seed));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pisces

int main(int argc, char** argv) { return pisces::Main(argc, argv); }
