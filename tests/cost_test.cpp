// Cost model tests against the paper's Table I.
#include <gtest/gtest.h>

#include "pisces/cost_model.h"

namespace pisces {
namespace {

TEST(CostModel, TableIValues) {
  const InstanceSpec& small = SpecOf(InstanceType::kSmall);
  EXPECT_STREQ(small.name, "Small");
  EXPECT_EQ(small.vcpus, 1u);
  EXPECT_DOUBLE_EQ(small.memory_gib, 1.7);
  EXPECT_DOUBLE_EQ(small.storage_gb, 160.0);
  EXPECT_DOUBLE_EQ(small.dedicated_per_hour, 0.048);
  EXPECT_DOUBLE_EQ(small.spot_per_hour, 0.0071);

  const InstanceSpec& medium = SpecOf(InstanceType::kMedium);
  EXPECT_DOUBLE_EQ(medium.dedicated_per_hour, 0.143);
  EXPECT_DOUBLE_EQ(medium.spot_per_hour, 0.0162);
  EXPECT_EQ(medium.vcpus, 2u);

  const InstanceSpec& large = SpecOf(InstanceType::kLarge);
  EXPECT_DOUBLE_EQ(large.dedicated_per_hour, 0.193);
  EXPECT_DOUBLE_EQ(large.spot_per_hour, 0.025);
  EXPECT_DOUBLE_EQ(large.memory_gib, 7.5);
}

TEST(CostModel, InstanceFromName) {
  EXPECT_EQ(InstanceFromName("Small"), InstanceType::kSmall);
  EXPECT_EQ(InstanceFromName("Large"), InstanceType::kLarge);
  EXPECT_THROW(InstanceFromName("XL"), InvalidArgument);
}

TEST(CostModel, MachineModelScalesByInstanceAndThreads) {
  MachineModel m;
  m.instance = InstanceType::kSmall;
  m.build_machine_ecu = 25.0;
  // 1 CPU-second here = 25 ECU-seconds = 25 s on a 1-ECU single-core Small.
  EXPECT_DOUBLE_EQ(m.InstanceSeconds(1.0, 1), 25.0);
  // Extra threads cannot help a single-vCPU instance.
  EXPECT_DOUBLE_EQ(m.InstanceSeconds(1.0, 4), 25.0);
  m.instance = InstanceType::kMedium;  // 2 vCPU x 2.5 ECU
  EXPECT_DOUBLE_EQ(m.InstanceSeconds(1.0, 1), 10.0);
  EXPECT_DOUBLE_EQ(m.InstanceSeconds(1.0, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.InstanceSeconds(1.0, 8), 5.0);  // capped at vCPUs
}

TEST(CostModel, WindowCostIncludesDedicatedFee) {
  CostModel cost;
  cost.machine.instance = InstanceType::kSmall;
  // 10 machines for one hour: 10 * 0.048 + 2.00 fee.
  EXPECT_NEAR(cost.WindowCost(10, 3600.0, false), 0.48 + 2.0, 1e-9);
  // Spot has no dedicated fee.
  EXPECT_NEAR(cost.WindowCost(10, 3600.0, true), 0.071, 1e-9);
  // Sub-hour windows scale linearly (per-second billing model).
  EXPECT_NEAR(cost.WindowCost(10, 360.0, false), (0.48 + 2.0) / 10, 1e-9);
}

TEST(CostModel, LargerInstanceCostsMoreButRunsFaster) {
  CostModel small_cost, large_cost;
  small_cost.machine.instance = InstanceType::kSmall;
  large_cost.machine.instance = InstanceType::kLarge;
  double cpu_s = 2.0;
  double t_small = small_cost.machine.InstanceSeconds(cpu_s, 2);
  double t_large = large_cost.machine.InstanceSeconds(cpu_s, 2);
  EXPECT_LT(t_large, t_small);
  EXPECT_GT(SpecOf(InstanceType::kLarge).dedicated_per_hour,
            SpecOf(InstanceType::kSmall).dedicated_per_hour);
}

TEST(CostModel, StorageCost) {
  CostModel cost;
  EXPECT_DOUBLE_EQ(cost.StorageCostPerMonth(10.0), 1.0);
}

TEST(CostModel, EgressCostPerGiB) {
  CostModel cost;
  EXPECT_NEAR(cost.EgressCost(1024.0 * 1024.0 * 1024.0), 0.09, 1e-12);
  EXPECT_NEAR(cost.EgressCost(0.0), 0.0, 1e-12);
  cost.egress_per_gb = 0.18;
  EXPECT_NEAR(cost.EgressCost(512.0 * 1024.0 * 1024.0), 0.09, 1e-12);
}

TEST(CostModel, ReconstructBytesClassicVsStaircase) {
  // Classic bills all n full vectors; staircase bills exactly `need`
  // vectors' worth regardless of d, plus per-contact request overhead.
  EXPECT_DOUBLE_EQ(CostModel::ReconstructBytes(16, 8, 16, 1000.0, false),
                   16000.0);
  EXPECT_DOUBLE_EQ(CostModel::ReconstructBytes(16, 8, 16, 1000.0, true),
                   8000.0);
  EXPECT_DOUBLE_EQ(CostModel::ReconstructBytes(16, 8, 12, 1000.0, true),
                   8000.0);
  // Overhead scales with contacts on the staircase path, with n on classic.
  EXPECT_DOUBLE_EQ(CostModel::ReconstructBytes(16, 8, 12, 1000.0, true, 50.0),
                   8000.0 + 12 * 50.0);
  EXPECT_DOUBLE_EQ(CostModel::ReconstructBytes(16, 8, 16, 1000.0, false, 50.0),
                   16000.0 + 16 * 50.0);
}

TEST(CostModel, PlanReadPicksTheStaircasePath) {
  CostModel cost;
  const ReadPlanChoice plan = cost.PlanRead(16, 8, 1.0e6);
  EXPECT_TRUE(plan.staircase);
  // Egress is flat in d, so ties resolve toward the widest contact set.
  EXPECT_EQ(plan.contacts, 16u);
  EXPECT_NEAR(plan.share_bytes / (16.0 * 1.0e6), 8.0 / 16.0, 1e-9);
  EXPECT_NEAR(plan.dollars_per_read, cost.EgressCost(8.0e6), 1e-12);
}

TEST(CostModel, PlanReadDegeneratesWhenStripingCannotWin) {
  CostModel cost;
  // need == n: striping moves the same share bytes as classic and adds no
  // win; the planner must not claim one.
  const ReadPlanChoice plan = cost.PlanRead(8, 8, 1.0e6);
  EXPECT_FALSE(plan.staircase);
  EXPECT_DOUBLE_EQ(plan.share_bytes, 8.0e6);
}

TEST(CostModel, PlanReadWeighsPerContactOverhead) {
  CostModel cost;
  // Tiny shares + huge per-contact overhead: a narrower contact set wins
  // over the widest stripe because the share saving is dwarfed.
  const ReadPlanChoice plan = cost.PlanRead(16, 8, 10.0, 1.0e6);
  if (plan.staircase) {
    EXPECT_EQ(plan.contacts, 8u);  // minimal-overhead degenerate stripe
  }
  // Regardless of path, the chosen plan is never costlier than classic.
  EXPECT_LE(plan.dollars_per_read,
            cost.EgressCost(CostModel::ReconstructBytes(16, 8, 16, 10.0,
                                                        false, 1.0e6)) +
                1e-12);
}

}  // namespace
}  // namespace pisces
