// Fault injection: corrupt dealers caught by hyperinvertible verification,
// tampered channel traffic dropped, stuck sessions detected (bounded-delay
// timeout path), malformed messages survived.
#include <gtest/gtest.h>

#include "pisces/pisces.h"

namespace pisces {
namespace {

ClusterConfig Config() {
  ClusterConfig cfg;
  cfg.params.n = 8;
  cfg.params.t = 1;
  cfg.params.l = 2;
  cfg.params.r = 2;
  cfg.params.field_bits = 256;
  cfg.seed = 31;
  return cfg;
}

TEST(Fault, TamperedDealIsRejectedByChannelAuth) {
  // Flipping bytes of an encrypted kDeal makes the HMAC fail; the host drops
  // the message and the first refresh round times out. The hypervisor then
  // RETRIES, the tamperer is one-shot, and the second round completes: the
  // window no longer aborts on a transient fault.
  Cluster cluster(Config());
  Rng rng(1);
  Bytes file = rng.RandomBytes(400);
  cluster.Upload(1, file);

  bool tampered = false;
  cluster.net().SetMutator([&](net::Message& m) {
    if (!tampered && m.type == net::MsgType::kDeal && m.from == 2) {
      m.payload[m.payload.size() / 2] ^= 0x55;
      tampered = true;
    }
    return true;
  });
  WindowReport report;
  EXPECT_TRUE(cluster.hypervisor().RefreshAllFiles(&report));
  cluster.net().SetMutator(nullptr);
  EXPECT_TRUE(tampered);
  EXPECT_GE(report.refresh_retries, 1u);
  EXPECT_GE(report.timeouts_fired, 1u);
  // A single dropped dealing is one strike, not an exclusion.
  EXPECT_TRUE(cluster.hypervisor().excluded_dealers().empty());
  // Shares were consistently updated: the file still downloads.
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(1)), file);
  // And the next (untampered) window is clean.
  EXPECT_TRUE(cluster.RunUpdateWindow().ok);
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(1)), file);
}

TEST(Fault, CorruptDealerCaughtWithPlaintextLinks) {
  // With encryption off, a corrupted payload reaches the VSS layer itself:
  // the check-row verification rejects the round, the hypervisor attributes
  // the inconsistent dealing columns to dealer 3, EXCLUDES it, and completes
  // the refresh from the remaining 7 dealers.
  ClusterConfig cfg = Config();
  cfg.encrypt_links = false;
  Cluster cluster(cfg);
  Rng rng(2);
  Bytes file = rng.RandomBytes(400);
  cluster.Upload(1, file);

  const std::size_t elem = cluster.ctx().elem_bytes();
  cluster.net().SetMutator([&](net::Message& m) {
    if (m.type == net::MsgType::kDeal && m.from == 3 &&
        m.payload.size() >= elem) {
      m.payload[3] ^= 0x01;  // corrupt dealer 3's polynomial evaluations
    }
    return true;
  });
  WindowReport report;
  EXPECT_TRUE(cluster.hypervisor().RefreshAllFiles(&report));
  cluster.net().SetMutator(nullptr);
  std::uint64_t rejected = 0;
  for (std::size_t i = 0; i < cfg.params.n; ++i) {
    rejected += cluster.host(i).verdicts_rejected();
  }
  EXPECT_GT(rejected, 0u) << "verification should have caught the dealer";
  EXPECT_EQ(cluster.hypervisor().excluded_dealers().count(3), 1u)
      << "the corrupt dealer should have been attributed and excluded";
  EXPECT_GE(report.refresh_retries, 1u);
  // Host 3 missed the retried round and was resynced from the fresh quorum.
  EXPECT_TRUE(cluster.hypervisor().stale_hosts().empty());
  // Data survives the whole episode.
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(1)), file);
}

TEST(Fault, CorruptMaskedShareHealedByRobustDecodeAndSenderSuspected) {
  ClusterConfig cfg = Config();
  cfg.encrypt_links = false;
  Cluster cluster(cfg);
  Rng rng(3);
  Bytes file = rng.RandomBytes(400);
  cluster.Upload(1, file);

  cluster.net().SetMutator([&](net::Message& m) {
    if (m.type == net::MsgType::kMaskedShare && m.from == 4 &&
        !m.payload.empty()) {
      m.payload[1] ^= 0x80;
    }
    return true;
  });
  std::uint32_t batch[] = {0};
  WindowReport report;
  bool ok = cluster.hypervisor().RebootAndRecover(batch, &report);
  cluster.net().SetMutator(nullptr);
  // One wrong masked share among 7 survivors is within the Berlekamp-Welch
  // radius (7 - d - 1)/2 = 1: the target decodes through it, recovery
  // completes, and the dispute machinery bars the sender from the survivor
  // role (either accused by the robust decode or struck out for the share
  // never deserializing, depending on where the flipped bit lands).
  EXPECT_TRUE(ok);
  EXPECT_EQ(cluster.hypervisor().suspected_hosts().count(4), 1u);
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(1)), file);
  // The recovered target holds a working share again: the file survives even
  // with the suspect barred and the original survivors minus one.
  EXPECT_TRUE(cluster.host(0).store().Has(1));
}

TEST(Fault, DroppedVerdictsLeaveStuckSessionsThatAreDetected) {
  ClusterConfig cfg = Config();
  Cluster cluster(cfg);
  Rng rng(4);
  cluster.Upload(1, rng.RandomBytes(300));

  // Drop every verdict: refresh sessions can never complete. Quiescence then
  // plays the bounded-delay timeout and the hypervisor aborts/report.
  cluster.net().SetMutator([](net::Message& m) {
    return m.type != net::MsgType::kVerdict;
  });
  EXPECT_FALSE(cluster.RefreshAllFiles());
  cluster.net().SetMutator(nullptr);
  for (std::size_t i = 0; i < cfg.params.n; ++i) {
    EXPECT_FALSE(cluster.host(i).HasActiveSessions()) << i;
  }
  // System recovers fully afterwards.
  EXPECT_TRUE(cluster.RunUpdateWindow().ok);
}

TEST(Fault, GarbageMessagesAreSurvived) {
  Cluster cluster(Config());
  Rng rng(5);
  Bytes file = rng.RandomBytes(200);
  cluster.Upload(1, file);

  // Inject junk of every type at a host; nothing should crash or wedge.
  auto* ep = cluster.net().AddEndpoint(9999);
  for (std::uint8_t t = 0; t <= 11; ++t) {
    net::Message junk;
    junk.from = 9999;
    junk.to = 3;
    junk.type = static_cast<net::MsgType>(t);
    junk.file_id = 1;
    junk.payload = rng.RandomBytes(33);
    ep->Send(std::move(junk));
  }
  cluster.sync().RunToQuiescence();
  // The junk sender has no session/certs; host should have dropped it all.
  EXPECT_TRUE(cluster.RunUpdateWindow().ok);
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(1)), file);
}

TEST(Fault, ForgedCertRejected) {
  Cluster cluster(Config());
  // An adversary-made CA signs a cert for host 2; peers must reject it.
  Rng rng(6);
  crypto::CertAuthority evil_ca(crypto::SchnorrGroup::Default(), rng);
  auto [evil_cert, evil_sk] = evil_ca.IssueHostKey(2, 99, rng);
  EXPECT_THROW(cluster.host(3).InstallPeerCert(evil_cert), InvalidArgument);

  auto* ep = cluster.net().AddEndpoint(8888);
  net::Message m;
  m.from = 8888;
  m.to = 3;
  m.type = net::MsgType::kHostCert;
  m.payload = evil_cert.Serialize();
  ep->Send(std::move(m));
  cluster.sync().RunToQuiescence();
  // Host 3 still talks to the genuine host 2 (window succeeds end-to-end).
  Bytes file = Rng(7).RandomBytes(150);
  cluster.Upload(4, file);
  EXPECT_TRUE(cluster.RunUpdateWindow().ok);
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(4)), file);
}

TEST(Fault, AbortStuckSessionsReportsDescriptions) {
  Cluster cluster(Config());
  Rng rng(8);
  cluster.Upload(1, rng.RandomBytes(100));
  cluster.net().SetMutator([](net::Message& m) {
    return m.type != net::MsgType::kCheckShare;  // wedge verification
  });
  cluster.RefreshAllFiles();  // returns false; sessions were aborted inside
  cluster.net().SetMutator(nullptr);
  // AbortStuckSessions was already called by the hypervisor; calling again
  // reports nothing.
  EXPECT_TRUE(cluster.host(0).AbortStuckSessions().empty());
}

}  // namespace
}  // namespace pisces
