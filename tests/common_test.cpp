// Byte utilities, error types, logging, and timers.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/error.h"
#include "common/log.h"

namespace pisces {
namespace {

TEST(Hex, RoundTrip) {
  Bytes data{0x00, 0x01, 0xAB, 0xFF};
  EXPECT_EQ(ToHex(data), "0001abff");
  EXPECT_EQ(FromHex("0001abff"), data);
  EXPECT_EQ(FromHex("0001ABFF"), data);  // uppercase accepted
}

TEST(Hex, RejectsBadInput) {
  EXPECT_THROW(FromHex("abc"), InvalidArgument);   // odd length
  EXPECT_THROW(FromHex("zz"), InvalidArgument);    // non-hex
}

TEST(LittleEndian, StoreLoad) {
  std::uint8_t buf[8];
  StoreLe32(0x12345678u, buf);
  EXPECT_EQ(buf[0], 0x78);
  EXPECT_EQ(buf[3], 0x12);
  EXPECT_EQ(LoadLe32(buf), 0x12345678u);
  StoreLe64(0x0123456789ABCDEFull, buf);
  EXPECT_EQ(LoadLe64(buf), 0x0123456789ABCDEFull);
}

TEST(ByteWriterReader, RoundTrip) {
  ByteWriter w;
  w.U8(7);
  w.U32(1234);
  w.U64(0xDEADBEEFCAFEull);
  w.Blob(Bytes{1, 2, 3});
  w.Raw(Bytes{9, 9});
  Bytes data = w.Take();

  ByteReader r(data);
  EXPECT_EQ(r.U8(), 7);
  EXPECT_EQ(r.U32(), 1234u);
  EXPECT_EQ(r.U64(), 0xDEADBEEFCAFEull);
  auto blob = r.Blob();
  EXPECT_EQ(Bytes(blob.begin(), blob.end()), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.Remaining(), 2u);
  auto raw = r.Raw(2);
  EXPECT_EQ(raw[0], 9);
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteReader, UnderflowThrows) {
  Bytes data{1, 2};
  ByteReader r(data);
  EXPECT_THROW(r.U32(), ParseError);
  ByteReader r2(data);
  EXPECT_THROW(r2.Raw(3), ParseError);
  ByteReader r3(data);
  EXPECT_THROW(r3.Blob(), ParseError);
}

TEST(Errors, HierarchyAndHelpers) {
  EXPECT_THROW(Require(false, "nope"), InvalidArgument);
  EXPECT_NO_THROW(Require(true, "fine"));
  EXPECT_THROW(Invariant(false, "bug"), InternalError);
  // Both are Errors, catchable as the base.
  try {
    Require(false, "x");
    FAIL();
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "x");
  }
}

TEST(Clock, CpuTimerAccumulates) {
  CpuTimer t;
  t.Start();
  // Burn a little CPU.
  volatile std::uint64_t acc = 1;
  for (int i = 0; i < 2000000; ++i) acc = acc * 31 + 7;
  t.Stop();
  std::uint64_t first = t.nanos();
  EXPECT_GT(first, 0u);
  {
    CpuScope scope(t);
    for (int i = 0; i < 2000000; ++i) acc = acc * 31 + 7;
  }
  EXPECT_GT(t.nanos(), first);
  t.Reset();
  EXPECT_EQ(t.nanos(), 0u);
}

TEST(Clock, MonotonicAdvances) {
  std::uint64_t a = MonotonicNanos();
  std::uint64_t b = MonotonicNanos();
  EXPECT_GE(b, a);
}

TEST(Log, LevelGate) {
  LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  LogWarn() << "should not crash while disabled";
  SetLogLevel(old);
}

}  // namespace
}  // namespace pisces
