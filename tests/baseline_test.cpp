// HJKY'95 baseline: correctness of share/refresh/reconstruct, and the
// asymptotic claim the paper makes against it.
#include <gtest/gtest.h>

#include <memory>

#include "field/primes.h"
#include "pss/baseline.h"
#include "pss/refresh.h"

namespace pisces::pss {
namespace {

using field::FpCtx;
using field::FpElem;

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest()
      : ctx_(field::StandardPrimeBe(256)), points_(ctx_, 9, 1), rng_(13) {}
  FpCtx ctx_;
  EvalPoints points_;
  Rng rng_;
  static constexpr std::size_t kN = 9;
  static constexpr std::size_t kT = 2;
};

TEST_F(BaselineTest, ShareReconstructRoundTrip) {
  std::vector<FpElem> secrets;
  for (int s = 0; s < 5; ++s) secrets.push_back(ctx_.Random(rng_));
  auto shares = BaselineShare(ctx_, points_, kN, kT, secrets, rng_);
  ASSERT_EQ(shares.size(), kN);
  for (std::size_t s = 0; s < secrets.size(); ++s) {
    EXPECT_TRUE(ctx_.Eq(BaselineReconstruct(ctx_, points_, kT, shares, s),
                        secrets[s]));
  }
}

TEST_F(BaselineTest, RefreshPreservesSecretsAndChangesShares) {
  std::vector<FpElem> secrets;
  for (int s = 0; s < 4; ++s) secrets.push_back(ctx_.Random(rng_));
  auto shares = BaselineShare(ctx_, points_, kN, kT, secrets, rng_);
  auto old = shares;
  BaselineStats stats = BaselineRefresh(ctx_, points_, kN, kT, shares, rng_);
  EXPECT_EQ(stats.elems_sent, secrets.size() * kN * (kN - 1));
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t s = 0; s < secrets.size(); ++s) {
      EXPECT_FALSE(ctx_.Eq(old[i][s], shares[i][s]));
    }
  }
  for (std::size_t s = 0; s < secrets.size(); ++s) {
    EXPECT_TRUE(ctx_.Eq(BaselineReconstruct(ctx_, points_, kT, shares, s),
                        secrets[s]));
  }
}

TEST_F(BaselineTest, PerSecretCommunicationIsQuadraticInN) {
  // The measured wire accounting must follow n(n-1) per secret -- the O(n^2)
  // the paper attributes to [25].
  for (std::size_t n : {5u, 9u, 13u}) {
    EvalPoints points(ctx_, n, 1);
    std::vector<FpElem> secrets{ctx_.Random(rng_)};
    auto shares = BaselineShare(ctx_, points, n, 1, secrets, rng_);
    BaselineStats stats = BaselineRefresh(ctx_, points, n, 1, shares, rng_);
    EXPECT_EQ(stats.elems_sent, n * (n - 1));
  }
}

TEST_F(BaselineTest, BatchedSchemeBeatsBaselinePerSecret) {
  // Tiny instance of the bench's claim, asserted as a test: for the same
  // number of raw secrets, the batched pipeline moves fewer field elements
  // per secret than the HJKY baseline.
  const std::size_t n = 13, t = 3, l = 3;
  auto ctx = std::make_shared<const FpCtx>(field::StandardPrimeBe(256));
  Params params;
  params.n = n;
  params.t = t;
  params.l = l;
  params.field_bits = 256;
  PackedShamir shamir(ctx, params);
  const std::size_t blocks = 3 * (n - 2 * t);
  const std::size_t secrets = blocks * l;

  RefreshPlan plan = RefreshPlan::For(blocks, params);
  std::uint64_t batched_elems =
      static_cast<std::uint64_t>(n) * (n - 1) * plan.groups +
      static_cast<std::uint64_t>(2 * t) * plan.groups * (n - 1);

  std::uint64_t baseline_elems =
      static_cast<std::uint64_t>(secrets) * n * (n - 1);

  EXPECT_LT(batched_elems * 5, baseline_elems)
      << "batched should win by a wide margin";
}

}  // namespace
}  // namespace pisces::pss
