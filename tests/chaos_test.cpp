// Chaos drill: twenty proactive update windows under a seeded schedule of
// drops, duplication, reordering, delivery jitter, and up to t mid-window
// crashes -- while a mobile adversary corrupts t fresh hosts every period.
//
// Windows are allowed to report transient failures (a crashed dealer stalls
// a round until the retry excludes it); what the drill forbids is
//   1. data loss: every stored file downloads bit-exactly in every window;
//   2. privacy loss: the adversary never captures more than t same-period
//      shares, and its real reconstruction attack keeps failing;
//   3. nondeterminism: re-running the identical configuration reproduces the
//      fault trace (every counter and byte total) exactly.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/sim_transport.h"
#include "pisces/adversary.h"
#include "pisces/pisces.h"

namespace pisces {
namespace {

constexpr std::uint32_t kWindows = 20;

ClusterConfig Config() {
  ClusterConfig cfg;
  cfg.params.n = 10;
  cfg.params.t = 2;
  cfg.params.l = 2;
  cfg.params.r = 2;
  cfg.params.field_bits = 256;
  cfg.seed = 97;
  return cfg;
}

// Everything observable about one drill run. Two runs of the same seeds must
// produce identical digests, down to the last dropped message.
struct Digest {
  std::vector<std::uint64_t> nums;
  bool operator==(const Digest&) const = default;
};

Digest RunDrill() {
  ClusterConfig cfg = Config();
  Cluster cluster(cfg);
  const std::uint32_t n = static_cast<std::uint32_t>(cfg.params.n);
  const std::size_t t = cfg.params.t;

  Rng data_rng(11);
  std::map<std::uint64_t, Bytes> files;
  files[1] = data_rng.RandomBytes(353);
  files[2] = data_rng.RandomBytes(96);
  for (const auto& [id, data] : files) cluster.Upload(id, data);

  Adversary adv(cluster);
  adv.Corrupt(1);
  adv.Corrupt(6);

  Digest digest;
  for (std::uint32_t w = 0; w < kWindows; ++w) {
    // Rates are calibrated to the protocol's round-level retry: a refresh
    // round is all-to-all (~hundreds of messages), so per-message loss has
    // to stay well below 1% for ANY round to complete -- the drill stresses
    // the retry/exclusion/resync machinery, not an impossible channel.
    // Duplication is free chaos: encrypted links reject the replayed copy.
    net::FaultPlan plan;
    plan.seed = 5000 + w;
    plan.all_links.drop_prob = 0.001;
    plan.all_links.dup_prob = 0.02;
    plan.all_links.reorder_prob = 0.001;
    plan.all_links.delay_jitter = 1;
    if (w % 4 == 1) {
      // f = 2 <= t crash triggers: one host dies early in the window, a
      // second one later. Both are revived by the window's reboot schedule.
      plan.crash_after[w % n] = 30;
      plan.crash_after[(w + 5) % n] = 200;
    }
    cluster.net().SetFaultPlan(plan);

    WindowReport report = cluster.hypervisor().RunUpdateWindow();
    digest.nums.push_back(report.ok ? 1 : 0);
    digest.nums.push_back(report.refresh_retries);
    digest.nums.push_back(report.recovery_retries);
    digest.nums.push_back(report.deals_excluded);
    digest.nums.push_back(report.timeouts_fired);
    digest.nums.push_back(report.reboots_deferred);
    digest.nums.push_back(report.sweeps_refresh + report.sweeps_recovery);

    // 1. Data: bit-exact downloads, with the fault plan still active (the
    //    client's retry + robust-decode path is part of what is drilled).
    for (const auto& [id, data] : files) {
      EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(id)), data)
          << "window " << w << " corrupted file " << id;
    }

    // 2. Privacy: the reboots expelled the adversary; it corrupts t fresh
    //    hosts for the next period and must stay below the threshold.
    adv.ObserveWindow();
    for (const auto& [id, data] : files) {
      EXPECT_LE(adv.MaxSamePeriodShares(id), t) << "window " << w;
      EXPECT_FALSE(adv.ExceedsPrivacyThreshold(id)) << "window " << w;
      EXPECT_EQ(adv.AttemptReconstruction(id), std::nullopt) << "window " << w;
    }
    adv.Corrupt(w % n);
    adv.Corrupt((w + 4) % n);
  }

  // A clean window after the storm: no faults, everything must come back.
  cluster.net().ClearFaults();
  WindowReport calm = cluster.hypervisor().RunUpdateWindow();
  EXPECT_TRUE(calm.ok) << "fault-free window after the drill must succeed";
  EXPECT_TRUE(cluster.hypervisor().stale_hosts().empty());
  for (const auto& [id, data] : files) EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(id)), data);

  // 3. Determinism material: the full per-endpoint fault trace.
  for (std::uint32_t id = 0; id < n; ++id) {
    const auto& st = cluster.net().StatsFor(id);
    digest.nums.insert(digest.nums.end(),
                       {st.msgs_sent, st.bytes_sent, st.msgs_dropped,
                        st.msgs_duplicated, st.msgs_delayed,
                        st.msgs_reordered, st.crashes});
  }
  const auto& client_stats = cluster.net().StatsFor(net::kClientId);
  digest.nums.push_back(client_stats.msgs_sent);
  digest.nums.push_back(client_stats.msgs_dropped);
  digest.nums.push_back(cluster.net().TotalMessages());
  digest.nums.push_back(cluster.net().TotalBytes());
  digest.nums.push_back(cluster.net().TotalDropped());
  digest.nums.push_back(cluster.client().retries());

  // The schedule must actually have hurt: faults of every flavor fired.
  std::uint64_t crashes = 0;
  for (std::uint32_t id = 0; id < n; ++id) {
    crashes += cluster.net().StatsFor(id).crashes;
  }
  EXPECT_GT(crashes, 0u) << "crash triggers never fired";
  EXPECT_GT(cluster.net().TotalDropped(), 0u);

  return digest;
}

TEST(Chaos, TwentyWindowsSurviveAndReproduce) {
  Digest first = RunDrill();
  Digest second = RunDrill();
  EXPECT_EQ(first, second)
      << "identical seeds must reproduce the identical fault trace";
}

}  // namespace
}  // namespace pisces
