// Differential suite for the quasi-linear polynomial engine
// (math/poly_engine.h): every engine path against the generic
// Lagrange/Vandermonde oracle it replaces, across all four standard prime
// sizes and across the crossover boundary. The contract under test is
// BIT-identity, not numerical closeness: F_p arithmetic is exact and FpElem's
// canonical Montgomery form means equal values are equal bytes, so EXPECT_EQ
// on element vectors is exactly the "wire bytes unchanged" guarantee.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/error.h"
#include "common/task_pool.h"
#include "field/fp.h"
#include "field/primes.h"
#include "math/poly.h"
#include "math/poly_engine.h"

namespace pisces::math {
namespace {

using field::FpCtx;
using field::FpElem;

constexpr std::size_t kPrimeBits[] = {256, 512, 1024, 2048};

std::vector<FpElem> RandomElems(const FpCtx& ctx, Rng& rng, std::size_t n) {
  std::vector<FpElem> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(ctx.Random(rng));
  return out;
}

// Distinct evaluation points 1..n (the share-domain shape: small consecutive
// field elements, exactly what EvalPoints produces).
std::vector<FpElem> DomainPoints(const FpCtx& ctx, std::size_t n) {
  std::vector<FpElem> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(ctx.FromUint64(i + 1));
  return xs;
}

// The O(a*b) convolution the Karatsuba product must reproduce exactly.
std::vector<FpElem> NaiveConvolution(const FpCtx& ctx,
                                     std::span<const FpElem> a,
                                     std::span<const FpElem> b) {
  if (a.empty() || b.empty()) return {};
  std::vector<FpElem> out(a.size() + b.size() - 1, ctx.Zero());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] = ctx.Add(out[i + j], ctx.Mul(a[i], b[j]));
    }
  }
  return out;
}

TEST(PolyEngine, MulMatchesNaiveConvolutionAcrossPrimes) {
  // Sizes straddle the Karatsuba base case (24) and the unbalanced-split
  // branch (one operand much shorter than the other).
  const std::size_t shapes[][2] = {{1, 1},  {2, 3},   {23, 23}, {24, 24},
                                   {25, 25}, {40, 7},  {7, 40},  {64, 33},
                                   {100, 100}, {129, 64}};
  for (std::size_t bits : kPrimeBits) {
    FpCtx ctx(field::StandardPrimeBe(bits));
    Rng rng(bits);
    for (const auto& s : shapes) {
      auto a = RandomElems(ctx, rng, s[0]);
      auto b = RandomElems(ctx, rng, s[1]);
      EXPECT_EQ(MulPolys(ctx, a, b), NaiveConvolution(ctx, a, b))
          << bits << "-bit, " << s[0] << "x" << s[1];
    }
  }
  // Empty operands: empty product.
  FpCtx ctx(field::StandardPrimeBe(256));
  Rng rng(9);
  auto a = RandomElems(ctx, rng, 5);
  EXPECT_TRUE(MulPolys(ctx, a, {}).empty());
  EXPECT_TRUE(MulPolys(ctx, {}, a).empty());
}

TEST(PolyEngine, EvalAllMatchesHornerAcrossPrimes) {
  for (std::size_t bits : kPrimeBits) {
    FpCtx ctx(field::StandardPrimeBe(bits));
    Rng rng(bits + 1);
    // Crossover-boundary and non-power-of-two domain sizes; polynomial both
    // shorter and longer than the domain (the latter exercises the
    // reduce-dividend-first path).
    for (std::size_t n : {2u, 8u, 16u, 17u, 33u, 64u}) {
      auto xs = DomainPoints(ctx, n);
      SubproductTree tree(ctx, xs);
      for (std::size_t deg :
           {std::size_t{0}, std::size_t{1}, n / 2, n - 1, n + 5}) {
        Poly f = Poly::Random(ctx, rng, deg);
        std::vector<FpElem> expect;
        for (const FpElem& x : xs) expect.push_back(f.Eval(ctx, x));
        EXPECT_EQ(tree.EvalAll(f.coeffs()), expect)
            << bits << "-bit, n=" << n << ", deg=" << deg;
      }
    }
  }
}

TEST(PolyEngine, InterpolateMatchesLagrangeOracleAcrossPrimes) {
  for (std::size_t bits : kPrimeBits) {
    FpCtx ctx(field::StandardPrimeBe(bits));
    Rng rng(bits + 2);
    for (std::size_t n : {2u, 9u, 16u, 17u, 18u, 31u, 64u}) {
      auto xs = DomainPoints(ctx, n);
      auto ys = RandomElems(ctx, rng, n);
      SubproductTree tree(ctx, xs);
      Poly oracle = Poly::InterpolateLagrange(ctx, xs, ys);
      EXPECT_EQ(tree.Interpolate(ys), oracle.coeffs())
          << bits << "-bit, n=" << n;
    }
  }
}

TEST(PolyEngine, DispatcherBitIdenticalAroundCrossover) {
  // Poly::Interpolate / Vanishing / LagrangeCoeffs switch implementation at
  // PolyEngineCrossover(); the switch must be invisible on bytes. Random
  // (n, t)-style share shapes spanning both sides of the default boundary.
  FpCtx ctx(field::StandardPrimeBe(256));
  Rng rng(404);
  const std::size_t cross = PolyEngineCrossover();
  for (std::size_t n :
       {std::size_t{4}, cross - 2, cross - 1, cross, cross + 1, cross + 7,
        std::size_t{48}}) {
    auto xs = DomainPoints(ctx, n);
    auto ys = RandomElems(ctx, rng, n);
    Poly via_dispatch = Poly::Interpolate(ctx, xs, ys);
    Poly via_oracle = Poly::InterpolateLagrange(ctx, xs, ys);
    EXPECT_EQ(via_dispatch.coeffs(), via_oracle.coeffs()) << "n=" << n;
    // Vanishing: the tree root vs the legacy running product.
    Poly v = Poly::Vanishing(ctx, xs);
    std::vector<FpElem> legacy = {ctx.One()};
    for (const FpElem& x : xs) {
      std::vector<FpElem> node = {ctx.Neg(x), ctx.One()};
      legacy = NaiveConvolution(ctx, legacy, node);
    }
    EXPECT_EQ(v.coeffs(), legacy) << "n=" << n;
    // Interpolant actually passes through the points.
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(via_dispatch.Eval(ctx, xs[i]), ys[i]);
    }
  }
}

TEST(PolyEngine, EvalManyMatchesPerPointEval) {
  FpCtx ctx(field::StandardPrimeBe(512));
  Rng rng(77);
  for (std::size_t n : {1u, 16u, 100u}) {
    auto xs = RandomElems(ctx, rng, n);
    Poly f = Poly::Random(ctx, rng, 20);
    std::vector<FpElem> expect;
    for (const FpElem& x : xs) expect.push_back(f.Eval(ctx, x));
    EXPECT_EQ(EvalMany(ctx, f.coeffs(), xs), expect) << "n=" << n;
  }
}

TEST(PolyEngine, DuplicatePointsRejected) {
  FpCtx ctx(field::StandardPrimeBe(256));
  auto xs = DomainPoints(ctx, 8);
  xs[5] = xs[2];
  EXPECT_THROW(SubproductTree(ctx, xs), Error);
}

TEST(PolyEngine, DomainCacheHitsMissesAndClear) {
  FpCtx ctx(field::StandardPrimeBe(256));
  ClearPolyDomainCache();
  ResetPolyEngineStats();
  auto xs = DomainPoints(ctx, 20);
  auto a = CachedSubproductTree(ctx, xs);
  auto b = CachedSubproductTree(ctx, xs);
  EXPECT_EQ(a.get(), b.get());  // second lookup reuses the built tree
  PolyEngineStats st = GetPolyEngineStats();
  EXPECT_EQ(st.domain_misses, 1u);
  EXPECT_GE(st.domain_hits, 1u);
  EXPECT_GE(PolyDomainCacheSize(), 1u);
  ClearPolyDomainCache();
  EXPECT_EQ(PolyDomainCacheSize(), 0u);
  // Distinct point sets are distinct cache entries.
  auto c = CachedSubproductTree(ctx, DomainPoints(ctx, 21));
  EXPECT_NE(c->size(), a->size());
}

TEST(PolyEngine, TreeBuildEvalInterpBitIdenticalAcrossPoolSizes) {
  // Many workers racing to build/lookup the same cached domain and running
  // eval/interp concurrently must produce exactly the serial results -- the
  // engine is pure serial compute and the cache resolves build races by
  // first-insert-wins over identical values.
  FpCtx ctx(field::StandardPrimeBe(256));
  const std::size_t n = 33;
  auto run = [&](std::size_t pool_threads) {
    SetGlobalPoolThreads(pool_threads);
    ClearPolyDomainCache();
    Rng rng(555);
    auto xs = DomainPoints(ctx, n);
    std::vector<std::vector<FpElem>> ys(8);
    for (auto& y : ys) y = RandomElems(ctx, rng, n);
    std::vector<std::vector<FpElem>> coeffs(ys.size());
    std::vector<std::vector<FpElem>> evals(ys.size());
    GlobalPool().ParallelFor(0, ys.size(), [&](std::size_t i) {
      auto tree = CachedSubproductTree(ctx, xs);
      coeffs[i] = tree->Interpolate(ys[i]);
      evals[i] = tree->EvalAll(coeffs[i]);
    });
    return std::pair{coeffs, evals};
  };
  auto base = run(1);
  auto pool2 = run(2);
  auto pool8 = run(8);
  SetGlobalPoolThreads(1);
  EXPECT_EQ(base, pool2);
  EXPECT_EQ(base, pool8);
  // Round trip: evaluating the interpolant reproduces the inputs.
  Rng rng(555);
  auto first = RandomElems(ctx, rng, n);
  EXPECT_EQ(base.second[0], first);
}

TEST(BatchInv, MatchesScalarInverseAcrossPrimes) {
  for (std::size_t bits : kPrimeBits) {
    FpCtx ctx(field::StandardPrimeBe(bits));
    Rng rng(bits + 3);
    std::vector<FpElem> v = RandomElems(ctx, rng, 17);
    std::vector<FpElem> expect;
    for (const FpElem& e : v) expect.push_back(ctx.Inv(e));
    ctx.BatchInv(v);
    EXPECT_EQ(v, expect) << bits << "-bit";
  }
}

TEST(BatchInv, ZeroElementsStayZeroWithoutPoisoningNeighbors) {
  // A zero anywhere in the batch used to be undefined behavior of the
  // prefix-product trick (0 poisons every prefix); now zeros are skipped via
  // a compacted view and every nonzero entry still gets its exact inverse.
  FpCtx ctx(field::StandardPrimeBe(256));
  Rng rng(31337);
  auto check = [&](std::vector<std::size_t> zero_at, std::size_t n) {
    std::vector<FpElem> v = RandomElems(ctx, rng, n);
    for (std::size_t i : zero_at) v[i] = ctx.Zero();
    std::vector<FpElem> expect;
    for (const FpElem& e : v) {
      expect.push_back(ctx.IsZero(e) ? ctx.Zero() : ctx.Inv(e));
    }
    ctx.BatchInv(v);
    EXPECT_EQ(v, expect);
  };
  check({0}, 8);             // first
  check({7}, 8);             // last
  check({3}, 8);             // middle
  check({0, 2, 4, 6}, 8);    // sprinkled
  check({0, 1, 2, 3}, 4);    // all zero
  check({0}, 1);             // single zero element
  check({}, 6);              // control: no zeros, fast path
}

TEST(BatchInv, EmptySpanIsANoOp) {
  FpCtx ctx(field::StandardPrimeBe(256));
  std::vector<FpElem> v;
  ctx.BatchInv(v);  // must not crash
  EXPECT_TRUE(v.empty());
}

}  // namespace
}  // namespace pisces::math
