// Crypto substrate tests against published vectors (FIPS 180-4, RFC 4231,
// RFC 5869, RFC 8439) plus behavioural tests for Schnorr, the CA, and the
// secure channel.
#include <gtest/gtest.h>

#include "crypto/ca.h"
#include "crypto/chacha20.h"
#include "crypto/channel.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace pisces::crypto {
namespace {

Bytes Ascii(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string HexOf(std::span<const std::uint8_t> d) { return ToHex(d); }

TEST(Sha256, EmptyString) {
  EXPECT_EQ(HexOf(Sha256Hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(HexOf(Sha256Hash(Ascii("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(HexOf(Sha256Hash(Ascii(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(HexOf(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Bytes data = Ascii("the quick brown fox jumps over the lazy dog 0123456789");
  for (std::size_t split = 0; split <= data.size(); split += 7) {
    Sha256 h;
    h.Update(std::span<const std::uint8_t>(data).subspan(0, split));
    h.Update(std::span<const std::uint8_t>(data).subspan(split));
    EXPECT_EQ(h.Finish(), Sha256Hash(data)) << split;
  }
}

TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(HexOf(HmacSha256(key, Ascii("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(HexOf(HmacSha256(Ascii("Jefe"),
                             Ascii("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashed) {
  Bytes key(131, 0xaa);
  // RFC 4231 test case 6.
  EXPECT_EQ(HexOf(HmacSha256(
                key, Ascii("Test Using Larger Than Block-Size Key - Hash "
                           "Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DigestEqConstantTime) {
  Digest a{}, b{};
  EXPECT_TRUE(DigestEq(a, b));
  b[31] = 1;
  EXPECT_FALSE(DigestEq(a, b));
}

TEST(Hkdf, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt = FromHex("000102030405060708090a0b0c");
  Bytes info = FromHex("f0f1f2f3f4f5f6f7f8f9");
  Bytes okm = HkdfSha256(salt, ikm, info, 42);
  EXPECT_EQ(ToHex(okm),
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, DifferentInfoGivesDifferentKeys) {
  Bytes ikm(32, 0x42);
  Bytes a = HkdfSha256({}, ikm, Ascii("a"), 32);
  Bytes b = HkdfSha256({}, ikm, Ascii("b"), 32);
  EXPECT_NE(a, b);
}

TEST(ChaCha20, Rfc8439BlockFunction) {
  Bytes key = FromHex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Bytes nonce = FromHex("000000090000004a00000000");
  auto block = ChaCha20Block(key, nonce, 1);
  EXPECT_EQ(ToHex(std::span<const std::uint8_t>(block.data(), 16)),
            "10f1e7e4d13b5915500fdd1fa32071c4");
}

TEST(ChaCha20, Rfc8439Encryption) {
  Bytes key = FromHex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Bytes nonce = FromHex("000000000000004a00000000");
  Bytes plaintext = Ascii(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  Bytes ct = plaintext;
  ChaCha20Xor(key, nonce, 1, ct);
  EXPECT_EQ(ToHex(std::span<const std::uint8_t>(ct.data(), 32)),
            "6e2e359a2568f98041ba0728dd0d6981"
            "e97e7aec1d4360c20a27afccfd9fae0b");
  // Decryption is the same operation.
  Bytes back = ct;
  ChaCha20Xor(key, nonce, 1, back);
  EXPECT_EQ(back, plaintext);
}

TEST(ChaCha20, RejectsBadSizes) {
  Bytes key(31, 0);
  Bytes nonce(12, 0);
  Bytes data(4, 0);
  EXPECT_THROW(ChaCha20Xor(key, nonce, 0, data), InvalidArgument);
}

class SchnorrTest : public ::testing::Test {
 protected:
  SchnorrTest() : group_(SchnorrGroup::Default()), rng_(33) {}
  const SchnorrGroup& group_;
  Rng rng_;
};

TEST_F(SchnorrTest, GroupStructure) {
  const auto& p = group_.p_ctx();
  EXPECT_EQ(p.bits(), 512u);
  EXPECT_EQ(group_.q_ctx().bits(), 256u);
  // g has order q: g^q == 1.
  Bytes q_be = group_.q_ctx().ModulusBytes();
  EXPECT_TRUE(p.Eq(p.PowBytes(group_.g(), q_be), p.One()));
  EXPECT_FALSE(p.Eq(group_.g(), p.One()));
}

TEST_F(SchnorrTest, SignVerifyRoundTrip) {
  auto keys = SchnorrKeygen(group_, rng_);
  Bytes msg = Ascii("refresh epoch 7 commitment");
  auto sig = SchnorrSign(group_, keys.sk, msg, rng_);
  EXPECT_TRUE(SchnorrVerify(group_, keys.pk, msg, sig));
}

TEST_F(SchnorrTest, TamperedMessageFails) {
  auto keys = SchnorrKeygen(group_, rng_);
  auto sig = SchnorrSign(group_, keys.sk, Ascii("hello"), rng_);
  EXPECT_FALSE(SchnorrVerify(group_, keys.pk, Ascii("hellp"), sig));
}

TEST_F(SchnorrTest, WrongKeyFails) {
  auto keys = SchnorrKeygen(group_, rng_);
  auto other = SchnorrKeygen(group_, rng_);
  auto sig = SchnorrSign(group_, keys.sk, Ascii("msg"), rng_);
  EXPECT_FALSE(SchnorrVerify(group_, other.pk, Ascii("msg"), sig));
}

TEST_F(SchnorrTest, SignatureSerialization) {
  auto keys = SchnorrKeygen(group_, rng_);
  auto sig = SchnorrSign(group_, keys.sk, Ascii("x"), rng_);
  auto back = SchnorrSignature::Deserialize(sig.Serialize());
  EXPECT_EQ(back.e, sig.e);
  EXPECT_EQ(back.s, sig.s);
}

TEST_F(SchnorrTest, DhSharedSecretSymmetric) {
  auto a = SchnorrKeygen(group_, rng_);
  auto b = SchnorrKeygen(group_, rng_);
  EXPECT_EQ(DhSharedSecret(group_, a.sk, b.pk),
            DhSharedSecret(group_, b.sk, a.pk));
  auto c = SchnorrKeygen(group_, rng_);
  EXPECT_NE(DhSharedSecret(group_, a.sk, b.pk),
            DhSharedSecret(group_, a.sk, c.pk));
}

TEST_F(SchnorrTest, CertAuthorityIssuesVerifiableCerts) {
  CertAuthority ca(group_, rng_);
  auto [cert, sk] = ca.IssueHostKey(5, 2, rng_);
  EXPECT_EQ(cert.host_id, 5u);
  EXPECT_EQ(cert.epoch, 2u);
  EXPECT_TRUE(CertAuthority::VerifyCert(group_, ca.public_key(), cert));
  // Cert round-trips the wire.
  auto back = HostCert::Deserialize(cert.Serialize());
  EXPECT_TRUE(CertAuthority::VerifyCert(group_, ca.public_key(), back));
  // Tampering breaks it.
  back.host_id = 6;
  EXPECT_FALSE(CertAuthority::VerifyCert(group_, ca.public_key(), back));
}

TEST_F(SchnorrTest, CertFromOtherCaRejected) {
  CertAuthority ca1(group_, rng_);
  CertAuthority ca2(group_, rng_);
  auto [cert, sk] = ca1.IssueHostKey(1, 1, rng_);
  EXPECT_FALSE(CertAuthority::VerifyCert(group_, ca2.public_key(), cert));
}

class ChannelTest : public ::testing::Test {
 protected:
  ChannelTest() : group_(SchnorrGroup::Default()), rng_(44) {
    a_keys_ = SchnorrKeygen(group_, rng_);
    b_keys_ = SchnorrKeygen(group_, rng_);
  }
  SecureChannel MakeA() {
    return MakeChannel(group_, a_keys_.sk, b_keys_.pk, 1, 10, 20);
  }
  SecureChannel MakeB() {
    return MakeChannel(group_, b_keys_.sk, a_keys_.pk, 1, 20, 10);
  }
  const SchnorrGroup& group_;
  Rng rng_;
  SchnorrKeyPair a_keys_, b_keys_;
};

TEST_F(ChannelTest, SealOpenRoundTrip) {
  auto a = MakeA();
  auto b = MakeB();
  Bytes msg = Ascii("share block 42");
  Bytes frame = a.Seal(msg);
  EXPECT_NE(frame, msg);  // actually encrypted
  auto opened = b.Open(frame);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
  // And the other direction with independent keys.
  Bytes frame2 = b.Seal(msg);
  EXPECT_NE(frame2, frame);
  auto opened2 = a.Open(frame2);
  ASSERT_TRUE(opened2.has_value());
  EXPECT_EQ(*opened2, msg);
}

TEST_F(ChannelTest, TamperDetected) {
  auto a = MakeA();
  auto b = MakeB();
  Bytes frame = a.Seal(Ascii("data"));
  frame[frame.size() / 2] ^= 1;
  EXPECT_FALSE(b.Open(frame).has_value());
}

TEST_F(ChannelTest, ReplayRejected) {
  auto a = MakeA();
  auto b = MakeB();
  Bytes frame = a.Seal(Ascii("once"));
  EXPECT_TRUE(b.Open(frame).has_value());
  EXPECT_FALSE(b.Open(frame).has_value());
}

TEST_F(ChannelTest, ReorderedFrameAcceptedExactlyOnce) {
  auto a = MakeA();
  auto b = MakeB();
  Bytes f1 = a.Seal(Ascii("one"));
  Bytes f2 = a.Seal(Ascii("two"));
  // The network delivered f2 first; f1 is late but legitimate. The sliding
  // anti-replay window accepts it once and rejects the replayed copy.
  EXPECT_TRUE(b.Open(f2).has_value());
  auto late = b.Open(f1);
  ASSERT_TRUE(late.has_value());
  EXPECT_EQ(*late, Ascii("one"));
  EXPECT_FALSE(b.Open(f1).has_value()) << "second copy is a replay";
  EXPECT_FALSE(b.Open(f2).has_value()) << "second copy is a replay";
}

TEST_F(ChannelTest, FramesBehindTheWindowRejected) {
  auto a = MakeA();
  auto b = MakeB();
  Bytes stale = a.Seal(Ascii("stale"));  // counter 1
  // Advance the receive highwater far past the window.
  for (std::uint64_t i = 0; i < SecureChannel::kReplayWindow + 1; ++i) {
    ASSERT_TRUE(b.Open(a.Seal(Ascii("advance"))).has_value());
  }
  EXPECT_FALSE(b.Open(stale).has_value())
      << "counters older than the window must be rejected unseen or not";
}

TEST_F(ChannelTest, ShuffledBurstAllAcceptedOnceUnderWindow) {
  auto a = MakeA();
  auto b = MakeB();
  std::vector<Bytes> frames;
  for (int i = 0; i < 32; ++i) {
    frames.push_back(a.Seal(Bytes{static_cast<std::uint8_t>(i)}));
  }
  // Worst-case reorder within the window: deliver in reverse.
  for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
    EXPECT_TRUE(b.Open(*it).has_value());
  }
  for (const auto& f : frames) {
    EXPECT_FALSE(b.Open(f).has_value()) << "every duplicate must be rejected";
  }
}

TEST_F(ChannelTest, EpochSeparation) {
  auto a1 = MakeChannel(group_, a_keys_.sk, b_keys_.pk, 1, 10, 20);
  auto b2 = MakeChannel(group_, b_keys_.sk, a_keys_.pk, 2, 20, 10);
  Bytes frame = a1.Seal(Ascii("cross-epoch"));
  EXPECT_FALSE(b2.Open(frame).has_value());
}

}  // namespace
}  // namespace pisces::crypto
