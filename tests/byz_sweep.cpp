// Deterministic Byzantine seed-sweep campaign runner (ctest label: byz_sweep).
//
// Each seed drives one multi-window campaign: every window draws a fresh
// corruption schedule (DrawByzantinePlan: which hosts cheat and how), a mild
// link-fault plan (duplicates + reordering from the same seed stream), and a
// passive capture set topped up to exactly t hosts, then runs a full
// proactive update window and asserts the paper's three invariants:
//
//   safety    the file still downloads bit-exactly after the window;
//   privacy   the adversary never holds > t same-period shares, and neither
//             same-period nor cross-period reconstruction succeeds;
//   liveness  refresh + every recovery batch complete (window report ok)
//             despite <= t active corruptions.
//
// plus a detection ledger check: every dealer-side cheater (equivocation or
// corrupted zero-sharing) must be attributed by the hypervisor within the
// window, and tampered masked shares must trip the robust-decode counters.
//
// Replay workflow: when a seed fails, the runner prints a single REPLAY line
// with the exact command to re-run just that campaign, e.g.
//
//   REPLAY: tests/byz_sweep --seed 17 --windows 10
//
// Run it from the build directory (or any directory -- the binary is
// self-contained) to reproduce the failure deterministically; add --verbose
// for the per-window plan and counter deltas. Sweep-wide knobs:
//   --seeds N     number of seeds, starting at --start (default 25)
//   --start S     first seed (default 1)
//   --windows W   update windows per campaign (default 10)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>

#include "obs/registry.h"
#include "pisces/byzantine.h"
#include "pisces/pisces.h"

namespace pisces {
namespace {

struct SweepOptions {
  std::uint64_t start_seed = 1;
  std::size_t seeds = 25;
  std::size_t windows = 10;
  // Reshare-enabled campaigns appended after the plain sweep: every window
  // first LIVE-RESHARDS the group (grow / degenerate / shrink, cycling)
  // with the Byzantine plan already armed, then runs the update window at
  // the new shape. 0 disables. Replay with --seed S --reshare.
  std::size_t reshare_seeds = 5;
  bool verbose = false;
};

// Campaign parameters: n = 10, t = 2, l = 1, r = 2 (3t + l = 7 < 10 and
// r + l = 3 < n - 3t = 4). The client decoding radius is (10 - d - 1)/2 = 3
// >= t and the masked-share radius with n - r = 8 survivors is 2 >= t, so
// every drawn schedule is inside what the dispute machinery absorbs.
pss::Params CampaignParams() {
  pss::Params p;
  p.n = 10;
  p.t = 2;
  p.l = 1;
  p.r = 2;
  p.b = 1;
  p.field_bits = 256;
  return p;
}

bool Check(bool cond, std::uint64_t seed, std::size_t window,
           const char* invariant, const char* detail) {
  if (cond) return true;
  std::fprintf(stderr, "byz_sweep: seed %llu window %zu: %s violated (%s)\n",
               static_cast<unsigned long long>(seed), window, invariant,
               detail);
  return false;
}

// Reshare campaign parameters: n = 10, t = 2, l = 2, r = 1 (3t + l = 8 < 10
// and r + l = 3 <= n - 3t = 4). Packing l >= 2 is deliberate: it is what
// makes reshare contributions FULLY verifiable (the beta-consistency
// cross-check needs at least two packed secrets -- docs/resharding.md), so
// every dealer-side cheat the plan draws is detectable during the
// redistribution itself, not only during refresh.
pss::Params ReshareCampaignParams(std::size_t n) {
  pss::Params p;
  p.n = n;
  p.t = 2;
  p.l = 2;
  p.r = 1;
  p.b = 1;
  p.field_bits = 256;
  return p;
}

// One reshare-enabled campaign: each window arms a drawn Byzantine plan plus
// mild link faults, live-reshards the fleet (grow -> degenerate -> shrink,
// cycling), runs a full update window at the new shape, and asserts
//
//   liveness   the migration completes despite <= t armed cheaters (their
//              contributions are rejected/withheld and the round retried),
//              and the following update window is ok;
//   safety     the file downloads bit-exactly after every migration;
//   no-recon   the migration spends ZERO reconstruction traffic (obs deltas
//              of kReconstructRequest and kMaskedShare bytes are exactly 0).
bool RunReshareCampaign(std::uint64_t seed, const SweepOptions& opt) {
  ClusterConfig cc;
  cc.params = ReshareCampaignParams(10);
  cc.seed = seed ^ 0x5EC0DULL;
  Cluster cluster(cc);

  Rng rng(seed ^ 0x7E5A);
  const Bytes file = rng.RandomBytes(400);
  cluster.Upload(1, file);

  pss::Params current = cc.params;
  for (std::size_t w = 0; w < opt.windows; ++w) {
    const std::uint64_t wseed = rng.Next();
    const ByzantinePlan plan = DrawByzantinePlan(wseed, current);

    net::FaultPlan fp;
    fp.seed = wseed ^ 0xFA57;
    fp.all_links.dup_prob = 0.02;
    fp.all_links.reorder_prob = 0.05;
    cluster.net().SetFaultPlan(fp);
    cluster.ArmByzantine(plan);

    // Shape cycle: grow to 13, rerandomize in place, shrink back to 10.
    pss::Params to = current;
    switch (w % 3) {
      case 0: to = ReshareCampaignParams(13); break;
      case 1: break;  // degenerate: same shape, fresh shares
      case 2: to = ReshareCampaignParams(10); break;
    }

    const obs::Snapshot before = obs::TakeSnapshot();
    bool migrated = true;
    std::string failure;
    try {
      cluster.Reshare(to);
    } catch (const Error& e) {
      migrated = false;
      failure = e.what();
    }
    const obs::Snapshot delta = obs::Delta(before, obs::TakeSnapshot());

    bool good = true;
    good &= Check(migrated, seed, w, "liveness",
                  migrated ? "" : failure.c_str());
    if (!good) return false;
    current = to;

    const std::uint64_t recon_bytes =
        obs::Value(delta, std::string("net.bytes_sent.") +
                              net::MsgTypeName(
                                  net::MsgType::kReconstructRequest)) +
        obs::Value(delta, std::string("net.bytes_sent.") +
                              net::MsgTypeName(net::MsgType::kMaskedShare));
    good &= Check(recon_bytes == 0, seed, w, "no-recon",
                  "migration spent reconstruction traffic");
    good &= Check(cluster.Download(pisces::ReadSpec::Classic(1)) == file,
                  seed, w, "safety",
                  "download after migration does not match plaintext");

    // Full proactive window at the new shape, cheaters still armed.
    const WindowReport report = cluster.RunUpdateWindow();
    cluster.DisarmByzantine();
    cluster.net().SetFaultPlan(net::FaultPlan{});
    good &= Check(report.ok, seed, w, "liveness",
                  report.failures.empty() ? "window not ok"
                                          : report.failures.front().c_str());
    good &= Check(cluster.Download(pisces::ReadSpec::Classic(1)) == file,
                  seed, w, "safety",
                  "download after update window does not match plaintext");

    if (opt.verbose) {
      std::string plan_desc;
      for (const auto& [host, strategy] : plan.hosts) {
        plan_desc += " " + std::to_string(host) + "=" + StrategyName(strategy);
      }
      std::printf(
          "reshare seed %llu window %zu: n=%zu plan{%s } rejected=%llu "
          "withheld=%llu retries=%llu\n",
          static_cast<unsigned long long>(seed), w, current.n,
          plan_desc.c_str(),
          static_cast<unsigned long long>(
              obs::Value(delta, "reshare.contributions_rejected")),
          static_cast<unsigned long long>(
              obs::Value(delta, "reshare.contributions_withheld")),
          static_cast<unsigned long long>(
              obs::Value(delta, "reshare.retries")));
    }
    if (!good) return false;
  }
  return true;
}

bool RunCampaign(std::uint64_t seed, const SweepOptions& opt) {
  const pss::Params params = CampaignParams();
  ClusterConfig cc;
  cc.params = params;
  cc.seed = seed ^ 0xB12A57ULL;
  Cluster cluster(cc);

  Rng rng(seed);
  const Bytes file = rng.RandomBytes(400);
  cluster.Upload(1, file);
  Adversary spy(cluster);

  for (std::size_t w = 0; w < opt.windows; ++w) {
    const std::uint64_t wseed = rng.Next();
    const ByzantinePlan plan = DrawByzantinePlan(wseed, params);

    // Mild fabric faults on top of the corruptions: duplicates and
    // reordering never cost liveness, so the invariants stay assertable.
    net::FaultPlan fp;
    fp.seed = wseed ^ 0xFA57;
    fp.all_links.dup_prob = 0.02;
    fp.all_links.reorder_prob = 0.05;
    cluster.net().SetFaultPlan(fp);
    cluster.ArmByzantine(plan);

    // The passive adversary reads every actively corrupt host and tops the
    // capture set up to exactly t hosts -- the worst case the privacy
    // invariant must hold against.
    std::set<std::uint32_t> spied;
    for (const auto& [host, strategy] : plan.hosts) spied.insert(host);
    while (spied.size() < params.t) {
      spied.insert(static_cast<std::uint32_t>(rng.Below(params.n)));
    }
    for (std::uint32_t id : spied) spy.Corrupt(id);

    const obs::Snapshot before = obs::TakeSnapshot();
    const WindowReport report = cluster.RunUpdateWindow();
    const obs::Snapshot delta = obs::Delta(before, obs::TakeSnapshot());

    cluster.DisarmByzantine();
    cluster.net().SetFaultPlan(net::FaultPlan{});
    spy.ObserveWindow();

    std::size_t dealer_side = 0;
    std::size_t wrong_share = 0;
    for (const auto& [host, strategy] : plan.hosts) {
      if (strategy == ByzantineStrategy::kEquivocate ||
          strategy == ByzantineStrategy::kCorruptDeal) {
        ++dealer_side;
      }
      if (strategy == ByzantineStrategy::kWrongShare) ++wrong_share;
    }
    if (opt.verbose) {
      std::string plan_desc;
      for (const auto& [host, strategy] : plan.hosts) {
        plan_desc += " " + std::to_string(host) + "=" + StrategyName(strategy);
      }
      std::printf(
          "seed %llu window %zu: plan{%s } ok=%d attributed=%llu "
          "suspected=%llu corrected=%llu withheld=%llu\n",
          static_cast<unsigned long long>(seed), w, plan_desc.c_str(),
          report.ok ? 1 : 0,
          static_cast<unsigned long long>(
              obs::Value(delta, "byz.dealers_attributed")),
          static_cast<unsigned long long>(
              obs::Value(delta, "byz.survivors_suspected")),
          static_cast<unsigned long long>(
              obs::Value(delta, "byz.recovery_shares_corrected")),
          static_cast<unsigned long long>(
              obs::Value(delta, "byz.messages_withheld")));
    }

    bool good = true;
    // Liveness: <= t corruptions must not stop refresh or recovery.
    good &= Check(report.ok, seed, w, "liveness",
                  report.failures.empty() ? "window not ok"
                                          : report.failures.front().c_str());
    // Safety: the stored plaintext is intact.
    good &= Check(cluster.Download(pisces::ReadSpec::Classic(1)) == file, seed, w, "safety",
                  "download does not match uploaded plaintext");
    // Privacy: never > t same-period shares, and no reconstruction -- not
    // even mixing captures across periods.
    good &= Check(!spy.ExceedsPrivacyThreshold(1), seed, w, "privacy",
                  "adversary holds > t same-period shares");
    good &= Check(!spy.AttemptReconstruction(1).has_value(), seed, w,
                  "privacy", "same-period reconstruction succeeded");
    good &= Check(!spy.AttemptMixedReconstruction(1).has_value(), seed, w,
                  "privacy", "cross-period reconstruction succeeded");
    // Detection ledger: every seeded dealer-side cheater is attributed, and
    // tampered masked shares trip the robust decode.
    good &= Check(obs::Value(delta, "byz.dealers_attributed") >= dealer_side,
                  seed, w, "detection", "cheating dealer not attributed");
    if (wrong_share > 0) {
      good &= Check(obs::Value(delta, "byz.recovery_inconsistent") > 0, seed,
                    w, "detection", "tampered masked shares never detected");
    }
    if (!good) return false;
  }
  return true;
}

int Main(int argc, char** argv) {
  SweepOptions opt;
  bool single_seed = false;
  bool reshare_replay = false;
  std::uint64_t seed_arg = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "byz_sweep: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      single_seed = true;
      seed_arg = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seeds") {
      opt.seeds = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--start") {
      opt.start_seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--windows") {
      opt.windows = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--reshare-seeds") {
      opt.reshare_seeds = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--reshare") {
      reshare_replay = true;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: byz_sweep [--seed S [--reshare] | --seeds N "
                   "--start S --reshare-seeds R] [--windows W] [--verbose]\n");
      return 2;
    }
  }

  if (single_seed) {
    opt.start_seed = seed_arg;
    opt.seeds = reshare_replay ? 0 : 1;
    opt.reshare_seeds = reshare_replay ? 1 : 0;
  }
  std::size_t failed = 0;
  for (std::size_t k = 0; k < opt.seeds; ++k) {
    const std::uint64_t seed = opt.start_seed + k;
    if (RunCampaign(seed, opt)) {
      std::printf("seed %llu: ok (%zu windows)\n",
                  static_cast<unsigned long long>(seed), opt.windows);
      continue;
    }
    ++failed;
    std::printf("REPLAY: tests/byz_sweep --seed %llu --windows %zu --verbose\n",
                static_cast<unsigned long long>(seed), opt.windows);
  }
  for (std::size_t k = 0; k < opt.reshare_seeds; ++k) {
    const std::uint64_t seed = opt.start_seed + k;
    if (RunReshareCampaign(seed, opt)) {
      std::printf("reshare seed %llu: ok (%zu windows)\n",
                  static_cast<unsigned long long>(seed), opt.windows);
      continue;
    }
    ++failed;
    std::printf(
        "REPLAY: tests/byz_sweep --seed %llu --windows %zu --reshare "
        "--verbose\n",
        static_cast<unsigned long long>(seed), opt.windows);
  }
  const std::size_t total = opt.seeds + opt.reshare_seeds;
  if (failed != 0) {
    std::printf("byz_sweep: %zu of %zu seeds FAILED\n", failed, total);
    return 1;
  }
  std::printf("byz_sweep: all %zu seeds passed\n", total);
  return 0;
}

}  // namespace
}  // namespace pisces

int main(int argc, char** argv) { return pisces::Main(argc, argv); }
