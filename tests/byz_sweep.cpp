// Deterministic Byzantine seed-sweep campaign runner (ctest label: byz_sweep).
//
// Each seed drives one multi-window campaign: every window draws a fresh
// corruption schedule (DrawByzantinePlan: which hosts cheat and how), a mild
// link-fault plan (duplicates + reordering from the same seed stream), and a
// passive capture set topped up to exactly t hosts, then runs a full
// proactive update window and asserts the paper's three invariants:
//
//   safety    the file still downloads bit-exactly after the window;
//   privacy   the adversary never holds > t same-period shares, and neither
//             same-period nor cross-period reconstruction succeeds;
//   liveness  refresh + every recovery batch complete (window report ok)
//             despite <= t active corruptions.
//
// plus a detection ledger check: every dealer-side cheater (equivocation or
// corrupted zero-sharing) must be attributed by the hypervisor within the
// window, and tampered masked shares must trip the robust-decode counters.
//
// Replay workflow: when a seed fails, the runner prints a single REPLAY line
// with the exact command to re-run just that campaign, e.g.
//
//   REPLAY: tests/byz_sweep --seed 17 --windows 10
//
// Run it from the build directory (or any directory -- the binary is
// self-contained) to reproduce the failure deterministically; add --verbose
// for the per-window plan and counter deltas. Sweep-wide knobs:
//   --seeds N     number of seeds, starting at --start (default 25)
//   --start S     first seed (default 1)
//   --windows W   update windows per campaign (default 10)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>

#include "obs/registry.h"
#include "pisces/byzantine.h"
#include "pisces/pisces.h"

namespace pisces {
namespace {

struct SweepOptions {
  std::uint64_t start_seed = 1;
  std::size_t seeds = 25;
  std::size_t windows = 10;
  bool verbose = false;
};

// Campaign parameters: n = 10, t = 2, l = 1, r = 2 (3t + l = 7 < 10 and
// r + l = 3 < n - 3t = 4). The client decoding radius is (10 - d - 1)/2 = 3
// >= t and the masked-share radius with n - r = 8 survivors is 2 >= t, so
// every drawn schedule is inside what the dispute machinery absorbs.
pss::Params CampaignParams() {
  pss::Params p;
  p.n = 10;
  p.t = 2;
  p.l = 1;
  p.r = 2;
  p.b = 1;
  p.field_bits = 256;
  return p;
}

bool Check(bool cond, std::uint64_t seed, std::size_t window,
           const char* invariant, const char* detail) {
  if (cond) return true;
  std::fprintf(stderr, "byz_sweep: seed %llu window %zu: %s violated (%s)\n",
               static_cast<unsigned long long>(seed), window, invariant,
               detail);
  return false;
}

bool RunCampaign(std::uint64_t seed, const SweepOptions& opt) {
  const pss::Params params = CampaignParams();
  ClusterConfig cc;
  cc.params = params;
  cc.seed = seed ^ 0xB12A57ULL;
  Cluster cluster(cc);

  Rng rng(seed);
  const Bytes file = rng.RandomBytes(400);
  cluster.Upload(1, file);
  Adversary spy(cluster);

  for (std::size_t w = 0; w < opt.windows; ++w) {
    const std::uint64_t wseed = rng.Next();
    const ByzantinePlan plan = DrawByzantinePlan(wseed, params);

    // Mild fabric faults on top of the corruptions: duplicates and
    // reordering never cost liveness, so the invariants stay assertable.
    net::FaultPlan fp;
    fp.seed = wseed ^ 0xFA57;
    fp.all_links.dup_prob = 0.02;
    fp.all_links.reorder_prob = 0.05;
    cluster.net().SetFaultPlan(fp);
    cluster.ArmByzantine(plan);

    // The passive adversary reads every actively corrupt host and tops the
    // capture set up to exactly t hosts -- the worst case the privacy
    // invariant must hold against.
    std::set<std::uint32_t> spied;
    for (const auto& [host, strategy] : plan.hosts) spied.insert(host);
    while (spied.size() < params.t) {
      spied.insert(static_cast<std::uint32_t>(rng.Below(params.n)));
    }
    for (std::uint32_t id : spied) spy.Corrupt(id);

    const obs::Snapshot before = obs::TakeSnapshot();
    const WindowReport report = cluster.RunUpdateWindow();
    const obs::Snapshot delta = obs::Delta(before, obs::TakeSnapshot());

    cluster.DisarmByzantine();
    cluster.net().SetFaultPlan(net::FaultPlan{});
    spy.ObserveWindow();

    std::size_t dealer_side = 0;
    std::size_t wrong_share = 0;
    for (const auto& [host, strategy] : plan.hosts) {
      if (strategy == ByzantineStrategy::kEquivocate ||
          strategy == ByzantineStrategy::kCorruptDeal) {
        ++dealer_side;
      }
      if (strategy == ByzantineStrategy::kWrongShare) ++wrong_share;
    }
    if (opt.verbose) {
      std::string plan_desc;
      for (const auto& [host, strategy] : plan.hosts) {
        plan_desc += " " + std::to_string(host) + "=" + StrategyName(strategy);
      }
      std::printf(
          "seed %llu window %zu: plan{%s } ok=%d attributed=%llu "
          "suspected=%llu corrected=%llu withheld=%llu\n",
          static_cast<unsigned long long>(seed), w, plan_desc.c_str(),
          report.ok ? 1 : 0,
          static_cast<unsigned long long>(
              obs::Value(delta, "byz.dealers_attributed")),
          static_cast<unsigned long long>(
              obs::Value(delta, "byz.survivors_suspected")),
          static_cast<unsigned long long>(
              obs::Value(delta, "byz.recovery_shares_corrected")),
          static_cast<unsigned long long>(
              obs::Value(delta, "byz.messages_withheld")));
    }

    bool good = true;
    // Liveness: <= t corruptions must not stop refresh or recovery.
    good &= Check(report.ok, seed, w, "liveness",
                  report.failures.empty() ? "window not ok"
                                          : report.failures.front().c_str());
    // Safety: the stored plaintext is intact.
    good &= Check(cluster.Download(pisces::ReadSpec::Classic(1)) == file, seed, w, "safety",
                  "download does not match uploaded plaintext");
    // Privacy: never > t same-period shares, and no reconstruction -- not
    // even mixing captures across periods.
    good &= Check(!spy.ExceedsPrivacyThreshold(1), seed, w, "privacy",
                  "adversary holds > t same-period shares");
    good &= Check(!spy.AttemptReconstruction(1).has_value(), seed, w,
                  "privacy", "same-period reconstruction succeeded");
    good &= Check(!spy.AttemptMixedReconstruction(1).has_value(), seed, w,
                  "privacy", "cross-period reconstruction succeeded");
    // Detection ledger: every seeded dealer-side cheater is attributed, and
    // tampered masked shares trip the robust decode.
    good &= Check(obs::Value(delta, "byz.dealers_attributed") >= dealer_side,
                  seed, w, "detection", "cheating dealer not attributed");
    if (wrong_share > 0) {
      good &= Check(obs::Value(delta, "byz.recovery_inconsistent") > 0, seed,
                    w, "detection", "tampered masked shares never detected");
    }
    if (!good) return false;
  }
  return true;
}

int Main(int argc, char** argv) {
  SweepOptions opt;
  bool single_seed = false;
  std::uint64_t seed_arg = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "byz_sweep: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      single_seed = true;
      seed_arg = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seeds") {
      opt.seeds = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--start") {
      opt.start_seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--windows") {
      opt.windows = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: byz_sweep [--seed S | --seeds N --start S] "
                   "[--windows W] [--verbose]\n");
      return 2;
    }
  }

  if (single_seed) {
    opt.start_seed = seed_arg;
    opt.seeds = 1;
  }
  std::size_t failed = 0;
  for (std::size_t k = 0; k < opt.seeds; ++k) {
    const std::uint64_t seed = opt.start_seed + k;
    if (RunCampaign(seed, opt)) {
      std::printf("seed %llu: ok (%zu windows)\n",
                  static_cast<unsigned long long>(seed), opt.windows);
      continue;
    }
    ++failed;
    std::printf("REPLAY: tests/byz_sweep --seed %llu --windows %zu --verbose\n",
                static_cast<unsigned long long>(seed), opt.windows);
  }
  if (failed != 0) {
    std::printf("byz_sweep: %zu of %zu seeds FAILED\n", failed, opt.seeds);
    return 1;
  }
  std::printf("byz_sweep: all %zu seeds passed\n", opt.seeds);
  return 0;
}

}  // namespace
}  // namespace pisces

int main(int argc, char** argv) { return pisces::Main(argc, argv); }
