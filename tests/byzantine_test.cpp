// Active Byzantine adversary: seeded corruption plans, dealer equivocation
// and corrupted zero-sharings attributed by hyperinvertible verification,
// wrong shares healed by robust (Berlekamp-Welch) decoding with the liars
// accused, withholding punished by the strike machinery, and the
// armed-vs-unarmed differential that proves the honest path is byte-identical
// when no plan is armed.
//
// Layered like the protocol itself: the Reference* tests pin the algebra
// (pss layer, single process), the Cluster tests pin the message-passing
// dispute machinery end to end.
#include <gtest/gtest.h>

#include <memory>

#include "field/primes.h"
#include "obs/registry.h"
#include "pisces/byzantine.h"
#include "pisces/pisces.h"
#include "pss/recovery.h"
#include "pss/refresh.h"

namespace pisces {
namespace {

using field::FpCtx;
using field::FpElem;

// ---------------------------------------------------------------------------
// Reference (pss-layer) tests: n=13, t=2, l=3, r=2. d = t+l = 5; the
// recovery masked-share decoding radius with n-r = 11 survivors is
// (11 - 5 - 1)/2 = 2 = t, so exactly-t liars is the worst decodable case.
// ---------------------------------------------------------------------------
class ByzantineReferenceTest : public ::testing::Test {
 protected:
  ByzantineReferenceTest()
      : ctx_(std::make_shared<const FpCtx>(field::StandardPrimeBe(256))),
        rng_(0xB12u) {
    params_.n = 13;
    params_.t = 2;
    params_.l = 3;
    params_.r = 2;
    params_.field_bits = 256;
    params_.Validate();
    shamir_ = std::make_unique<pss::PackedShamir>(ctx_, params_);
  }

  std::vector<FpElem> RandomBlock() {
    std::vector<FpElem> s;
    for (std::size_t j = 0; j < params_.l; ++j) s.push_back(ctx_->Random(rng_));
    return s;
  }

  // Deals `blocks` random blocks; fills secrets_ and by-party share matrix.
  std::vector<std::vector<FpElem>> DealBlocks(std::size_t blocks) {
    std::vector<std::vector<FpElem>> by_party(params_.n,
                                              std::vector<FpElem>(blocks));
    secrets_.clear();
    for (std::size_t b = 0; b < blocks; ++b) {
      secrets_.push_back(RandomBlock());
      auto shares = shamir_->ShareBlock(secrets_[b], rng_);
      for (std::size_t i = 0; i < params_.n; ++i) by_party[i][b] = shares[i];
    }
    return by_party;
  }

  bool SameShares(const std::vector<std::vector<FpElem>>& a,
                  const std::vector<std::vector<FpElem>>& b) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      for (std::size_t k = 0; k < a[i].size(); ++k) {
        if (!ctx_->Eq(a[i][k], b[i][k])) return false;
      }
    }
    return true;
  }

  std::shared_ptr<const FpCtx> ctx_;
  Rng rng_;
  pss::Params params_;
  std::unique_ptr<pss::PackedShamir> shamir_;
  std::vector<std::vector<FpElem>> secrets_;
};

TEST_F(ByzantineReferenceTest, EquivocatingDealerAttributedSharesUntouched) {
  auto by_party = DealBlocks(4);
  const auto before = by_party;
  const std::uint32_t cheater = 4;
  ByzantineActor actor(cheater, ByzantineStrategy::kEquivocate, 0xE1, *ctx_);
  auto attributed =
      pss::ReferenceRefreshDetect(*shamir_, by_party, rng_, cheater, actor);
  ASSERT_EQ(attributed.size(), 1u)
      << "exactly the equivocating dealer must be attributed";
  EXPECT_EQ(attributed[0], cheater);
  // A failed round must not half-apply: the sharing is untouched.
  EXPECT_TRUE(SameShares(before, by_party));
}

TEST_F(ByzantineReferenceTest, CorruptZeroSharingAttributedSharesUntouched) {
  auto by_party = DealBlocks(4);
  const auto before = by_party;
  const std::uint32_t cheater = 9;
  // kCorruptDeal produces a CONSISTENT degree-<=d dealing that fails only the
  // vanishing condition -- the subtler cheat, invisible to degree checks.
  ByzantineActor actor(cheater, ByzantineStrategy::kCorruptDeal, 0xC0, *ctx_);
  auto attributed =
      pss::ReferenceRefreshDetect(*shamir_, by_party, rng_, cheater, actor);
  ASSERT_EQ(attributed.size(), 1u);
  EXPECT_EQ(attributed[0], cheater);
  EXPECT_TRUE(SameShares(before, by_party));
}

TEST_F(ByzantineReferenceTest, DealerSeamInactiveForNonDealerStrategies) {
  // kWrongShare / kWithhold act at the send sites, not the dealing seam:
  // through the seam they are no-ops and the round verifies clean, refreshes
  // every share, and preserves every secret.
  auto by_party = DealBlocks(3);
  const auto before = by_party;
  ByzantineActor actor(2, ByzantineStrategy::kWithhold, 0x77, *ctx_);
  auto attributed =
      pss::ReferenceRefreshDetect(*shamir_, by_party, rng_, 2, actor);
  EXPECT_TRUE(attributed.empty());
  EXPECT_FALSE(SameShares(before, by_party)) << "refresh must rerandomize";

  std::vector<std::uint32_t> parties(params_.n);
  for (std::uint32_t i = 0; i < params_.n; ++i) parties[i] = i;
  for (std::size_t b = 0; b < 3; ++b) {
    std::vector<FpElem> shares;
    for (std::size_t i = 0; i < params_.n; ++i) shares.push_back(by_party[i][b]);
    auto rec = shamir_->ReconstructBlock(parties, shares);
    for (std::size_t j = 0; j < params_.l; ++j) {
      EXPECT_TRUE(ctx_->Eq(rec[j], secrets_[b][j]));
    }
  }
}

TEST_F(ByzantineReferenceTest, RobustRecoveryAccusesExactlyTLiars) {
  auto by_party = DealBlocks(3);
  const auto truth = by_party;
  std::vector<std::uint32_t> reboot = {0, 6};
  for (auto tgt : reboot) by_party[tgt].assign(3, ctx_->Zero());
  // Exactly t = 2 lying survivors: the worst case inside the radius.
  std::vector<std::uint32_t> liars = {3, 11};
  auto accused =
      pss::ReferenceRecoverRobust(*shamir_, by_party, reboot, rng_, liars);
  std::sort(accused.begin(), accused.end());
  ASSERT_EQ(accused, liars) << "robust decode must name exactly the liars";
  // Recovered shares are bit-correct despite the lies.
  for (auto tgt : reboot) {
    for (std::size_t b = 0; b < 3; ++b) {
      EXPECT_TRUE(ctx_->Eq(by_party[tgt][b], truth[tgt][b]));
    }
  }
}

TEST_F(ByzantineReferenceTest, RobustReconstructReportsCorruptedIndices) {
  auto secrets = RandomBlock();
  auto shares = shamir_->ShareBlock(secrets, rng_);
  std::vector<std::uint32_t> parties(params_.n);
  for (std::uint32_t i = 0; i < params_.n; ++i) parties[i] = i;
  // Client-side radius is (n - d - 1)/2 = 3 >= t; corrupt exactly t shares.
  shares[1] = ctx_->Add(shares[1], ctx_->One());
  shares[7] = ctx_->Add(shares[7], ctx_->One());
  std::vector<std::size_t> corrupted;
  auto rec = shamir_->RobustReconstructBlock(parties, shares, &corrupted);
  ASSERT_TRUE(rec.has_value());
  for (std::size_t j = 0; j < params_.l; ++j) {
    EXPECT_TRUE(ctx_->Eq((*rec)[j], secrets[j]));
  }
  EXPECT_EQ(corrupted, (std::vector<std::size_t>{1, 7}))
      << "the corruption report must name the tampered share positions";
}

// ---------------------------------------------------------------------------
// Plan drawing: deterministic and always within the absorbable envelope.
// ---------------------------------------------------------------------------
TEST(ByzantinePlanTest, DrawIsDeterministicPerSeed) {
  pss::Params p;
  p.n = 10;
  p.t = 2;
  p.l = 1;
  p.r = 2;
  p.field_bits = 256;
  p.Validate();
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto a = DrawByzantinePlan(seed, p);
    const auto b = DrawByzantinePlan(seed, p);
    EXPECT_EQ(a.seed, seed);
    EXPECT_EQ(a.hosts, b.hosts) << "seed " << seed;
  }
  EXPECT_NE(DrawByzantinePlan(1, p).hosts, DrawByzantinePlan(2, p).hosts);
}

TEST(ByzantinePlanTest, DrawStaysWithinCorruptionAndDecodingBounds) {
  pss::Params p;
  p.n = 10;
  p.t = 2;
  p.l = 1;
  p.r = 2;
  p.field_bits = 256;
  p.Validate();
  const std::size_t radius = (p.n - p.r - p.degree() - 1) / 2;
  bool saw_corrupt = false;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const auto plan = DrawByzantinePlan(seed, p);
    EXPECT_LE(plan.hosts.size(), p.t) << "seed " << seed;
    std::size_t wrong_share = 0;
    for (const auto& [host, strategy] : plan.hosts) {
      EXPECT_LT(host, p.n);
      EXPECT_NE(strategy, ByzantineStrategy::kHonest);
      if (strategy == ByzantineStrategy::kWrongShare) ++wrong_share;
    }
    EXPECT_LE(wrong_share, radius)
        << "wrong-share hosts must fit the masked-share decoding radius";
    saw_corrupt |= plan.Armed();
  }
  EXPECT_TRUE(saw_corrupt);
}

// ---------------------------------------------------------------------------
// Cluster (message-passing) tests: n=10, t=2, l=1, r=2. d = 3; the client
// decoding radius is (10-3-1)/2 = 3 >= t and the recovery masked-share
// radius with 8 survivors is (8-3-1)/2 = 2 >= t.
// ---------------------------------------------------------------------------
ClusterConfig ByzConfig(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.params.n = 10;
  cfg.params.t = 2;
  cfg.params.l = 1;
  cfg.params.r = 2;
  cfg.params.field_bits = 256;
  cfg.seed = seed;
  return cfg;
}

ByzantinePlan OnePlan(std::uint64_t seed,
                      std::initializer_list<std::pair<std::uint32_t,
                                                      ByzantineStrategy>>
                          hosts) {
  ByzantinePlan plan;
  plan.seed = seed;
  for (const auto& [h, s] : hosts) plan.hosts[h] = s;
  return plan;
}

TEST(ByzantineCluster, EquivocatingDealerAttributedAndExcluded) {
  Cluster cluster(ByzConfig(101));
  Rng rng(1);
  const Bytes file = rng.RandomBytes(500);
  cluster.Upload(1, file);

  cluster.ArmByzantine(OnePlan(0xE9, {{3, ByzantineStrategy::kEquivocate}}));
  const obs::Snapshot before = obs::TakeSnapshot();
  WindowReport report;
  EXPECT_TRUE(cluster.hypervisor().RefreshAllFiles(&report));
  const obs::Snapshot delta = obs::Delta(before, obs::TakeSnapshot());
  cluster.DisarmByzantine();

  EXPECT_EQ(cluster.hypervisor().excluded_dealers().count(3), 1u)
      << "the equivocating dealer must be attributed and excluded";
  EXPECT_GE(obs::Value(delta, "byz.equivocations"), 1u);
  EXPECT_GE(obs::Value(delta, "byz.dealers_attributed"), 1u);
  EXPECT_GE(obs::Value(delta, "byz.vss_check_failures"), 1u);
  EXPECT_GE(report.refresh_retries, 1u);
  // The retried round succeeded without the cheater; data intact.
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(1)), file);
}

TEST(ByzantineCluster, CorruptZeroSharingDetectedAndExcluded) {
  Cluster cluster(ByzConfig(102));
  Rng rng(2);
  const Bytes file = rng.RandomBytes(500);
  cluster.Upload(1, file);

  cluster.ArmByzantine(OnePlan(0xC9, {{6, ByzantineStrategy::kCorruptDeal}}));
  const obs::Snapshot before = obs::TakeSnapshot();
  WindowReport report;
  EXPECT_TRUE(cluster.hypervisor().RefreshAllFiles(&report));
  const obs::Snapshot delta = obs::Delta(before, obs::TakeSnapshot());
  cluster.DisarmByzantine();

  EXPECT_EQ(cluster.hypervisor().excluded_dealers().count(6), 1u)
      << "a consistent-but-nonvanishing dealing must still be attributed";
  EXPECT_GE(obs::Value(delta, "byz.deals_tampered"), 1u);
  EXPECT_GE(obs::Value(delta, "byz.dealers_attributed"), 1u);
  // Applying the corrupted zero-sharing would have shifted the secrets; the
  // round was instead rejected and re-run, so the plaintext is unchanged.
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(1)), file);
}

TEST(ByzantineCluster, WrongSharesToClientHealedByRobustDownload) {
  Cluster cluster(ByzConfig(103));
  Rng rng(3);
  const Bytes file = rng.RandomBytes(700);
  cluster.Upload(1, file);

  // Exactly t = 2 hosts serve perturbed shares; the client decoding radius
  // is 3, so the download must heal through them -- and report both.
  cluster.ArmByzantine(OnePlan(0x59, {{2, ByzantineStrategy::kWrongShare},
                                      {8, ByzantineStrategy::kWrongShare}}));
  const obs::Snapshot before = obs::TakeSnapshot();
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(1)), file);
  const obs::Snapshot delta = obs::Delta(before, obs::TakeSnapshot());
  cluster.DisarmByzantine();

  EXPECT_GE(obs::Value(delta, "byz.shares_tampered"), 1u);
  EXPECT_GE(obs::Value(delta, "byz.client_robust_fallbacks"), 1u);
  EXPECT_GE(obs::Value(delta, "byz.client_shares_corrected"), 2u)
      << "both liars' shares must be corrected (and counted)";
  // Honest again: the plain fast path serves the same bytes.
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(1)), file);
}

TEST(ByzantineCluster, WrongMaskedSharesAccusedAndRecoveryCompletes) {
  Cluster cluster(ByzConfig(104));
  Rng rng(4);
  const Bytes file = rng.RandomBytes(500);
  cluster.Upload(1, file);

  // Host 5 serves perturbed masked shares during recovery of {0, 1}. One
  // liar among 8 survivors is inside the masked-share radius (2): the
  // targets decode through it and accuse the sender.
  cluster.ArmByzantine(OnePlan(0xA9, {{5, ByzantineStrategy::kWrongShare}}));
  const obs::Snapshot before = obs::TakeSnapshot();
  std::uint32_t batch[] = {0, 1};
  WindowReport report;
  EXPECT_TRUE(cluster.hypervisor().RebootAndRecover(batch, &report));
  const obs::Snapshot delta = obs::Delta(before, obs::TakeSnapshot());
  cluster.DisarmByzantine();

  EXPECT_EQ(cluster.hypervisor().suspected_hosts().count(5), 1u)
      << "the lying survivor must be barred from the survivor role";
  EXPECT_GE(obs::Value(delta, "byz.recovery_inconsistent"), 1u);
  EXPECT_GE(obs::Value(delta, "byz.recovery_shares_corrected"), 1u);
  EXPECT_GE(obs::Value(delta, "byz.survivors_suspected"), 1u);
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(1)), file);
  // The recovered targets hold working shares again.
  EXPECT_TRUE(cluster.host(0).store().Has(1));
  EXPECT_TRUE(cluster.host(1).store().Has(1));
}

TEST(ByzantineCluster, WithholdingDealerStruckOutAndRefreshCompletes) {
  Cluster cluster(ByzConfig(105));
  Rng rng(5);
  const Bytes file = rng.RandomBytes(500);
  cluster.Upload(1, file);

  // Host 7 silently withholds every refresh dealing. Each wedged round is
  // one strike; after two the dealer is excluded and the round completes
  // from the remaining nine.
  cluster.ArmByzantine(OnePlan(0x79, {{7, ByzantineStrategy::kWithhold}}));
  const obs::Snapshot before = obs::TakeSnapshot();
  WindowReport report;
  EXPECT_TRUE(cluster.hypervisor().RefreshAllFiles(&report));
  const obs::Snapshot delta = obs::Delta(before, obs::TakeSnapshot());
  cluster.DisarmByzantine();

  EXPECT_GE(obs::Value(delta, "byz.messages_withheld"), 2u);
  EXPECT_EQ(cluster.hypervisor().excluded_dealers().count(7), 1u)
      << "two withheld dealings must strike the dealer out";
  EXPECT_GE(report.refresh_retries, 2u);
  EXPECT_GE(report.timeouts_fired, 1u);
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(1)), file);
}

TEST(ByzantineCluster, WithholdingSurvivorSuspectedAndRecoveryCompletes) {
  Cluster cluster(ByzConfig(106));
  Rng rng(6);
  const Bytes file = rng.RandomBytes(500);
  cluster.Upload(1, file);

  // Host 4 withholds its recovery masked shares: every session toward the
  // rebooting targets wedges on it. Two strikes bar it from the survivor
  // role; the retry completes from the remaining survivors.
  cluster.ArmByzantine(OnePlan(0x49, {{4, ByzantineStrategy::kWithhold}}));
  const obs::Snapshot before = obs::TakeSnapshot();
  std::uint32_t batch[] = {0, 1};
  WindowReport report;
  const bool ok = cluster.hypervisor().RebootAndRecover(batch, &report);
  const obs::Snapshot delta = obs::Delta(before, obs::TakeSnapshot());
  cluster.DisarmByzantine();

  EXPECT_TRUE(ok);
  EXPECT_GE(obs::Value(delta, "byz.messages_withheld"), 1u);
  EXPECT_EQ(cluster.hypervisor().suspected_hosts().count(4), 1u)
      << "a silent survivor must be struck out of the survivor role";
  EXPECT_GE(obs::Value(delta, "byz.survivors_suspected"), 1u);
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(1)), file);
}

TEST(ByzantineCluster, SuspectsClearedByReboot) {
  Cluster cluster(ByzConfig(107));
  Rng rng(7);
  cluster.Upload(1, rng.RandomBytes(300));

  cluster.ArmByzantine(OnePlan(0xB9, {{5, ByzantineStrategy::kWrongShare}}));
  std::uint32_t batch[] = {0, 1};
  EXPECT_TRUE(cluster.hypervisor().RebootAndRecover(batch, nullptr));
  cluster.DisarmByzantine();
  ASSERT_EQ(cluster.hypervisor().suspected_hosts().count(5), 1u);

  // A full update window reboots every host; the fresh image is trusted
  // again (same contract as the dealer-exclusion record).
  EXPECT_TRUE(cluster.RunUpdateWindow().ok);
  EXPECT_TRUE(cluster.hypervisor().suspected_hosts().empty());
}

TEST(ByzantineCluster, ArmedEmptyPlanIsByteIdenticalToUnarmed) {
  // The engine's injection points are null-checked pointers: arming an EMPTY
  // plan must leave every protocol byte identical to a never-armed cluster.
  // Two clusters with the same seed are deterministic replicas; we compare
  // traffic totals, window reports, byz counters and the stored shares.
  Cluster unarmed(ByzConfig(108));
  Cluster armed(ByzConfig(108));
  Rng rng(8);
  const Bytes file = rng.RandomBytes(600);
  unarmed.Upload(1, file);
  armed.Upload(1, file);

  armed.ArmByzantine(ByzantinePlan{});  // armed, but nobody cheats
  ASSERT_NE(armed.byzantine_engine(), nullptr);
  const obs::Snapshot before = obs::TakeSnapshot();
  const WindowReport ru = unarmed.RunUpdateWindow();
  const WindowReport ra = armed.RunUpdateWindow();
  const obs::Snapshot delta = obs::Delta(before, obs::TakeSnapshot());

  EXPECT_TRUE(ru.ok);
  EXPECT_TRUE(ra.ok);
  EXPECT_EQ(ru.sweeps_refresh, ra.sweeps_refresh);
  EXPECT_EQ(ru.sweeps_recovery, ra.sweeps_recovery);
  EXPECT_EQ(ru.reboots, ra.reboots);
  EXPECT_EQ(ru.files_refreshed, ra.files_refreshed);
  EXPECT_EQ(ru.refresh_retries, ra.refresh_retries);
  EXPECT_EQ(ru.recovery_retries, ra.recovery_retries);

  // No byzantine action was ever taken (counters unregistered or zero).
  EXPECT_EQ(obs::Value(delta, "byz.deals_tampered"), 0u);
  EXPECT_EQ(obs::Value(delta, "byz.shares_tampered"), 0u);
  EXPECT_EQ(obs::Value(delta, "byz.messages_withheld"), 0u);

  // Traffic is identical message for message, byte for byte.
  const HostMetrics tu = unarmed.TotalMetrics();
  const HostMetrics ta = armed.TotalMetrics();
  EXPECT_EQ(tu.rerandomize.bytes_sent, ta.rerandomize.bytes_sent);
  EXPECT_EQ(tu.rerandomize.msgs_sent, ta.rerandomize.msgs_sent);
  EXPECT_EQ(tu.recover.bytes_sent, ta.recover.bytes_sent);
  EXPECT_EQ(tu.recover.msgs_sent, ta.recover.msgs_sent);

  // The refreshed sharings themselves are element-identical: same seed, same
  // draws, no byzantine perturbation anywhere in the pipeline.
  const auto& ctx = unarmed.ctx();
  for (std::size_t i = 0; i < 10; ++i) {
    auto& su = unarmed.host(i).store().Load(1);
    auto& sa = armed.host(i).store().Load(1);
    ASSERT_EQ(su.size(), sa.size());
    for (std::size_t b = 0; b < su.size(); ++b) {
      EXPECT_TRUE(ctx.Eq(su[b], sa[b])) << "host " << i << " block " << b;
    }
  }
  EXPECT_EQ(unarmed.Download(pisces::ReadSpec::Classic(1)), armed.Download(pisces::ReadSpec::Classic(1)));
}

TEST(ByzantineCluster, MixedPlanFullWindowKeepsAllInvariants) {
  // One window with a dealer-side cheater AND a wrong-share host active at
  // once, plus a passive spy reading t hosts: the integration case the seed
  // sweep runs 250 times. Kept to one window here so the default test lane
  // stays fast.
  Cluster cluster(ByzConfig(109));
  Rng rng(9);
  const Bytes file = rng.RandomBytes(800);
  cluster.Upload(1, file);
  Adversary spy(cluster);
  spy.Corrupt(3);
  spy.Corrupt(5);

  cluster.ArmByzantine(OnePlan(0xD9, {{3, ByzantineStrategy::kEquivocate},
                                      {5, ByzantineStrategy::kWrongShare}}));
  const obs::Snapshot before = obs::TakeSnapshot();
  const WindowReport report = cluster.RunUpdateWindow();
  const obs::Snapshot delta = obs::Delta(before, obs::TakeSnapshot());
  cluster.DisarmByzantine();
  spy.ObserveWindow();

  // Liveness.
  EXPECT_TRUE(report.ok);
  // Safety.
  EXPECT_EQ(cluster.Download(pisces::ReadSpec::Classic(1)), file);
  // Privacy: t captured hosts reveal nothing, in-period or across periods.
  EXPECT_FALSE(spy.ExceedsPrivacyThreshold(1));
  EXPECT_FALSE(spy.AttemptReconstruction(1).has_value());
  EXPECT_FALSE(spy.AttemptMixedReconstruction(1).has_value());
  // Detection: the dealer-side cheater was attributed within the window.
  EXPECT_GE(obs::Value(delta, "byz.dealers_attributed"), 1u);
}

}  // namespace
}  // namespace pisces
