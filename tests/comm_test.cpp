// Communication-efficient download & repair: differential and bytes-on-wire
// coverage for the staircase read path and reduced recovery
// (docs/bandwidth.md).
//
// The staircase codepoints must be bit-identical to the classic full-share
// oracle -- across all four standard prime sizes, at the degenerate contact
// budget d = degree+1, and under fault/Byzantine plans where the policy
// falls back to the oracle. On top of equivalence, this suite pins the wire
// contract itself: the per-message-type byte counters must show a striped
// read moving measurably fewer ShareResponse bytes and a reduced repair
// moving measurably fewer MaskedShare bytes.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "field/primes.h"
#include "net/message.h"
#include "net/serving_frame.h"
#include "obs/registry.h"
#include "pisces/cluster.h"
#include "pisces/serving.h"
#include "pss/comm_efficient.h"

namespace pisces {
namespace {

Bytes MakeFile(std::size_t size, std::uint8_t tweak = 0) {
  Bytes file(size);
  for (std::size_t i = 0; i < size; ++i) {
    file[i] = static_cast<std::uint8_t>((i * 131 + 17 + tweak) & 0xFF);
  }
  return file;
}

ClusterConfig MidConfig(std::uint64_t seed = 1) {
  // n = 16: t = 4, l = 2, degree = 6, need = 7 -- a staircase read at d = 16
  // moves need/n = 7/16 of the classic protocol's share bytes.
  ClusterConfig cfg;
  cfg.params = pss::Params::Natural(16, 256);
  cfg.seed = seed;
  return cfg;
}

std::uint64_t SentBytes(const obs::Snapshot& before, net::MsgType type) {
  const obs::Snapshot delta = obs::Delta(before, obs::TakeSnapshot());
  return obs::Value(delta,
                    std::string("net.bytes_sent.") + net::MsgTypeName(type));
}

// ---------------------------------------------------------------------------
// Stripe layout math
// ---------------------------------------------------------------------------

TEST(CommStripe, EveryBlockCoveredByExactlyNeedContacts) {
  for (std::size_t contacts : {3u, 5u, 8u, 16u}) {
    for (std::size_t need = 1; need <= contacts; ++need) {
      const pss::StripeLayout layout(contacts, need);
      const std::size_t blocks = 41;  // not a multiple of any contact count
      std::size_t total = 0;
      for (std::size_t b = 0; b < blocks; ++b) {
        const auto senders = layout.SendersFor(b);
        EXPECT_EQ(senders.size(), need);
        std::set<std::uint32_t> uniq(senders.begin(), senders.end());
        EXPECT_EQ(uniq.size(), need) << "duplicate sender for block " << b;
        for (std::uint32_t j : senders) {
          EXPECT_TRUE(layout.Sends(j, b));
        }
      }
      for (std::size_t j = 0; j < contacts; ++j) {
        const auto mine = layout.BlocksFor(j, blocks);
        EXPECT_EQ(mine.size(), layout.CountFor(j, blocks));
        EXPECT_TRUE(std::is_sorted(mine.begin(), mine.end()));
        for (std::size_t b : mine) EXPECT_TRUE(layout.Sends(j, b));
        total += mine.size();
      }
      // Exactly need points per block cross the wire, no redundancy.
      EXPECT_EQ(total, need * blocks);
    }
  }
}

TEST(CommStripe, LoadIsBalanced) {
  const pss::StripeLayout layout(16, 8);
  // When contacts divides the block count every contact serves exactly
  // need/contacts of the blocks.
  for (std::size_t j = 0; j < layout.contacts; ++j) {
    EXPECT_EQ(layout.CountFor(j, 112), 112 * 8 / 16);
  }
  // Otherwise the ragged residue classes spread the remainder: per-contact
  // load stays within `need` blocks of even.
  std::size_t lo = 107, hi = 0;
  for (std::size_t j = 0; j < layout.contacts; ++j) {
    const std::size_t c = layout.CountFor(j, 107);
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  EXPECT_LE(hi - lo, layout.need);
}

TEST(CommStripe, FeasibilityWindow) {
  const pss::Params p = pss::Params::Natural(16, 256);
  const std::size_t need = p.degree() + 1;
  EXPECT_FALSE(pss::StaircaseFeasible(p, need - 1));
  EXPECT_TRUE(pss::StaircaseFeasible(p, need));
  EXPECT_TRUE(pss::StaircaseFeasible(p, p.n));
  EXPECT_FALSE(pss::StaircaseFeasible(p, p.n + 1));
  EXPECT_EQ(pss::ResolveContacts(p, 0), p.n);  // 0 = widest stripe
  EXPECT_EQ(pss::ResolveContacts(p, static_cast<std::uint32_t>(need)), need);
  EXPECT_EQ(pss::ResolveContacts(p, static_cast<std::uint32_t>(need - 1)), 0u);
  EXPECT_EQ(pss::ResolveContacts(p, static_cast<std::uint32_t>(p.n + 4)), 0u);
  EXPECT_EQ(pss::DefaultRecoveryBudget(p, 15), p.degree() + 3);
  EXPECT_EQ(pss::DefaultRecoveryBudget(p, 5), 5u);
}

// ---------------------------------------------------------------------------
// ReadSpec / ReadPolicy wire form
// ---------------------------------------------------------------------------

TEST(CommReadSpec, PolicyRoundTripsAndRejectsGarbage) {
  ReadPolicy p;
  p.path = ReadPath::kStaircase;
  p.contacts = 12;
  p.fallback = ReadFallback::kFail;
  const Bytes wire = p.Serialize();
  EXPECT_EQ(wire.size(), 6u);
  const ReadPolicy back = ReadPolicy::Deserialize(wire);
  EXPECT_EQ(back.path, p.path);
  EXPECT_EQ(back.contacts, p.contacts);
  EXPECT_EQ(back.fallback, p.fallback);

  Bytes bad_path = wire;
  bad_path[0] = 7;
  EXPECT_THROW(ReadPolicy::Deserialize(bad_path), ParseError);
  Bytes bad_fb = wire;
  bad_fb[5] = 9;
  EXPECT_THROW(ReadPolicy::Deserialize(bad_fb), ParseError);
  Bytes trailing = wire;
  trailing.push_back(0);
  EXPECT_THROW(ReadPolicy::Deserialize(trailing), ParseError);
  EXPECT_THROW(ReadPolicy::Deserialize(Bytes{1, 2}), ParseError);
}

TEST(CommReadSpec, FactoriesNameTheCodepoints) {
  const ReadSpec classic = ReadSpec::Classic(42);
  EXPECT_EQ(classic.file_id, 42u);
  EXPECT_EQ(classic.policy.path, ReadPath::kFullShare);
  const ReadSpec stair = ReadSpec::Staircase(7, 12, ReadFallback::kFail);
  EXPECT_EQ(stair.file_id, 7u);
  EXPECT_EQ(stair.policy.path, ReadPath::kStaircase);
  EXPECT_EQ(stair.policy.contacts, 12u);
  EXPECT_EQ(stair.policy.fallback, ReadFallback::kFail);
}

// ---------------------------------------------------------------------------
// Differential: staircase == classic oracle
// ---------------------------------------------------------------------------

TEST(CommDifferential, StaircaseMatchesOracleAcrossPrimeSizes) {
  // All four standard prime sizes; n = 13 keeps the big fields affordable.
  for (std::size_t bits : field::kStandardFieldBits) {
    ClusterConfig cfg;
    cfg.params = pss::Params::Natural(13, bits);
    cfg.seed = 3;
    Cluster cluster(cfg);
    const Bytes file = MakeFile(700, static_cast<std::uint8_t>(bits));
    cluster.Upload(1, file);
    const obs::Snapshot before = obs::TakeSnapshot();
    const Bytes oracle = cluster.Download(ReadSpec::Classic(1));
    EXPECT_EQ(oracle, file) << bits << "-bit oracle";
    EXPECT_EQ(cluster.Download(ReadSpec::Staircase(1)), oracle)
        << bits << "-bit staircase (d = n)";
    const std::uint32_t need =
        static_cast<std::uint32_t>(cfg.params.degree() + 1);
    EXPECT_EQ(cluster.Download(ReadSpec::Staircase(1, need)), oracle)
        << bits << "-bit staircase (degenerate d = need)";
    // Healthy fleet: equivalence must come from the staircase path itself,
    // never from a silent fallback to the oracle.
    const obs::Snapshot delta = obs::Delta(before, obs::TakeSnapshot());
    EXPECT_EQ(obs::Value(delta, "comm.staircase_fallbacks"), 0u) << bits;
  }
}

TEST(CommDifferential, EveryFeasibleContactBudgetAgrees) {
  Cluster cluster(MidConfig(5));
  const Bytes file = MakeFile(4096);
  cluster.Upload(1, file);
  const pss::Params& p = cluster.config().params;
  const obs::Snapshot before = obs::TakeSnapshot();
  for (std::size_t d = p.degree() + 1; d <= p.n; ++d) {
    // kFail leaves no fallback: equivalence must hold on the stripe itself.
    EXPECT_EQ(cluster.Download(ReadSpec::Staircase(
                  1, static_cast<std::uint32_t>(d), ReadFallback::kFail)),
              file)
        << "contacts = " << d;
  }
  const obs::Snapshot delta = obs::Delta(before, obs::TakeSnapshot());
  EXPECT_EQ(obs::Value(delta, "comm.staircase_fallbacks"), 0u);
}

TEST(CommDifferential, InfeasibleBudgetDegradesOrFailsPerPolicy) {
  Cluster cluster(MidConfig(7));
  const Bytes file = MakeFile(512);
  cluster.Upload(1, file);
  const obs::Snapshot before = obs::TakeSnapshot();
  // d below degree+1 cannot cover a block's quorum: kClassic degrades...
  EXPECT_EQ(cluster.Download(ReadSpec::Staircase(1, 3, ReadFallback::kClassic)),
            file);
  const obs::Snapshot delta = obs::Delta(before, obs::TakeSnapshot());
  EXPECT_GE(obs::Value(delta, "comm.staircase_infeasible"), 1u);
  // ...and kFail surfaces the infeasibility to the caller.
  EXPECT_THROW(cluster.Download(ReadSpec::Staircase(1, 3, ReadFallback::kFail)),
               InvalidArgument);
}

TEST(CommDifferential, OfflineContactFallsBackToOracle) {
  Cluster cluster(MidConfig(9));
  const Bytes file = MakeFile(2048);
  cluster.Upload(1, file);
  // Host 2 sits inside every widest-stripe contact set; taking it offline
  // starves the stripe (no redundancy inside one staircase read), so the
  // fallback policy decides the outcome.
  cluster.net().SetOffline(2, true);
  const obs::Snapshot before = obs::TakeSnapshot();
  EXPECT_EQ(cluster.Download(ReadSpec::Staircase(1, 0, ReadFallback::kClassic)),
            file);
  const obs::Snapshot delta = obs::Delta(before, obs::TakeSnapshot());
  EXPECT_GE(obs::Value(delta, "comm.staircase_fallbacks"), 1u);
  EXPECT_THROW(cluster.Download(ReadSpec::Staircase(1, 0, ReadFallback::kFail)),
               Error);
  cluster.net().SetOffline(2, false);
  EXPECT_EQ(cluster.Download(ReadSpec::Staircase(1)), file);
}

TEST(CommDifferential, ByzantineContactFallsBackToOracle) {
  Cluster cluster(MidConfig(11));
  const Bytes file = MakeFile(2048);
  cluster.Upload(1, file);
  ByzantinePlan plan;
  plan.seed = 0xB0B;
  plan.hosts[1] = ByzantineStrategy::kWrongShare;
  cluster.ArmByzantine(plan);
  // A tampered stripe has no decode slack: the corruption surfaces as a
  // codec integrity failure and the read falls back to the oracle path,
  // whose robust decoder reconstructs through the lie.
  const obs::Snapshot before = obs::TakeSnapshot();
  EXPECT_EQ(cluster.Download(ReadSpec::Staircase(1)), file);
  const obs::Snapshot delta = obs::Delta(before, obs::TakeSnapshot());
  EXPECT_GE(obs::Value(delta, "comm.staircase_fallbacks"), 1u);
  cluster.DisarmByzantine();
  EXPECT_EQ(cluster.Download(ReadSpec::Staircase(1)), file);
}

TEST(CommDifferential, StaircaseSurvivesUpdateWindows) {
  Cluster cluster(MidConfig(13));
  const Bytes file = MakeFile(1024);
  cluster.Upload(1, file);
  const obs::Snapshot before = obs::TakeSnapshot();
  for (int w = 0; w < 2; ++w) {
    ASSERT_TRUE(cluster.RunUpdateWindow().ok) << "window " << w;
    EXPECT_EQ(cluster.Download(ReadSpec::Staircase(1)), file)
        << "window " << w;
    EXPECT_EQ(cluster.Download(ReadSpec::Classic(1)), file) << "window " << w;
  }
  const obs::Snapshot delta = obs::Delta(before, obs::TakeSnapshot());
  EXPECT_EQ(obs::Value(delta, "comm.staircase_fallbacks"), 0u);
}

// ---------------------------------------------------------------------------
// Bytes on the wire per codepoint
// ---------------------------------------------------------------------------

TEST(CommBytes, StripedReadMovesFewerShareResponseBytes) {
  Cluster cluster(MidConfig(17));
  const Bytes file = MakeFile(8192);
  cluster.Upload(1, file);

  obs::Snapshot before = obs::TakeSnapshot();
  ASSERT_EQ(cluster.Download(ReadSpec::Classic(1)), file);
  const std::uint64_t classic = SentBytes(before, net::MsgType::kShareResponse);

  before = obs::TakeSnapshot();
  ASSERT_EQ(cluster.Download(ReadSpec::Staircase(1)), file);
  const std::uint64_t striped = SentBytes(before, net::MsgType::kShareResponse);

  ASSERT_GT(classic, 0u);
  ASSERT_GT(striped, 0u);
  // need/n = 8/16: the share payload halves; meta and sealing overhead ride
  // on every response, so gate at 0.7 rather than the asymptotic 0.5.
  EXPECT_LT(static_cast<double>(striped), 0.7 * static_cast<double>(classic))
      << "striped " << striped << "B vs classic " << classic << "B";
}

TEST(CommBytes, StaircaseRequestCarriesTwelveByteDescriptor) {
  ClusterConfig cfg = MidConfig(19);
  cfg.encrypt_links = false;  // count plaintext frames, not sealed ones
  Cluster cluster(cfg);
  const Bytes file = MakeFile(512);
  cluster.Upload(1, file);
  const std::size_t n = cluster.config().params.n;

  obs::Snapshot before = obs::TakeSnapshot();
  ASSERT_EQ(cluster.Download(ReadSpec::Classic(1)), file);
  const std::uint64_t classic_req =
      SentBytes(before, net::MsgType::kReconstructRequest);

  before = obs::TakeSnapshot();
  ASSERT_EQ(cluster.Download(ReadSpec::Staircase(1)), file);
  const std::uint64_t striped_req =
      SentBytes(before, net::MsgType::kReconstructRequest);

  // Classic requests stay byte-identical to the pre-ReadSpec protocol
  // (header only); the staircase descriptor adds exactly 12 bytes
  // (index, contacts, need) per contacted host.
  EXPECT_EQ(classic_req, n * net::kWireHeaderSize);
  EXPECT_EQ(striped_req, n * (net::kWireHeaderSize + 12));
}

TEST(CommBytes, ReducedRepairMovesFewerMaskedShareBytes) {
  const Bytes file = MakeFile(8192);
  const std::vector<std::uint32_t> batch{0};

  Cluster full(MidConfig(23));
  full.Upload(1, file);
  obs::Snapshot before = obs::TakeSnapshot();
  ASSERT_TRUE(full.hypervisor().RebootAndRecover(batch));
  const std::uint64_t full_bytes =
      SentBytes(before, net::MsgType::kMaskedShare);
  EXPECT_EQ(full.Download(ReadSpec::Classic(1)), file);

  ClusterConfig red_cfg = MidConfig(23);
  red_cfg.repair.path = ReadPath::kStaircase;
  Cluster reduced(red_cfg);
  reduced.Upload(1, file);
  before = obs::TakeSnapshot();
  ASSERT_TRUE(reduced.hypervisor().RebootAndRecover(batch));
  const std::uint64_t reduced_bytes =
      SentBytes(before, net::MsgType::kMaskedShare);
  EXPECT_EQ(reduced.Download(ReadSpec::Classic(1)), file);

  ASSERT_GT(full_bytes, 0u);
  ASSERT_GT(reduced_bytes, 0u);
  // 15 survivors ship budget = degree+3 = 9 points per block instead of 15:
  // a 3/5 payload ratio; sealing overhead keeps the gate at 0.85.
  EXPECT_LT(static_cast<double>(reduced_bytes),
            0.85 * static_cast<double>(full_bytes))
      << "reduced " << reduced_bytes << "B vs full " << full_bytes << "B";
}

// ---------------------------------------------------------------------------
// Reduced repair end-to-end
// ---------------------------------------------------------------------------

TEST(CommRecovery, ReducedRepairHealsTheFleet) {
  ClusterConfig cfg = MidConfig(29);
  cfg.repair.path = ReadPath::kStaircase;
  Cluster cluster(cfg);
  const Bytes file = MakeFile(3000);
  cluster.Upload(1, file);
  const std::vector<std::uint32_t> batch{3, 4};
  ASSERT_TRUE(cluster.hypervisor().RebootAndRecover(batch));
  EXPECT_TRUE(cluster.host(3).store().Has(1));
  EXPECT_TRUE(cluster.host(4).store().Has(1));
  EXPECT_EQ(cluster.Download(ReadSpec::Classic(1)), file);
  EXPECT_EQ(cluster.Download(ReadSpec::Staircase(1)), file);
  // Subsequent proactive windows run reduced too and keep the file intact.
  ASSERT_TRUE(cluster.RunUpdateWindow().ok);
  EXPECT_EQ(cluster.Download(ReadSpec::Classic(1)), file);
}

TEST(CommRecovery, ReducedRepairCorrectsATamperedStripe) {
  ClusterConfig cfg = MidConfig(31);
  cfg.repair.path = ReadPath::kStaircase;
  Cluster cluster(cfg);
  const Bytes file = MakeFile(3000);
  cluster.Upload(1, file);
  // One lying survivor: the reduced budget's slack over degree+1 gives the
  // target a decode radius of one wrong point per block, so the repair
  // either corrects in place or fails the attempt and retries in full mode
  // -- both must end with the true share restored.
  ByzantinePlan plan;
  plan.seed = 0x5EED;
  plan.hosts[7] = ByzantineStrategy::kWrongShare;
  cluster.ArmByzantine(plan);
  const std::vector<std::uint32_t> batch{0};
  ASSERT_TRUE(cluster.hypervisor().RebootAndRecover(batch));
  cluster.DisarmByzantine();
  EXPECT_TRUE(cluster.host(0).store().Has(1));
  EXPECT_EQ(cluster.Download(ReadSpec::Classic(1)), file);
}

TEST(CommRecovery, ExplicitBudgetOverrideIsHonored) {
  ClusterConfig cfg = MidConfig(37);
  cfg.repair.path = ReadPath::kStaircase;
  cfg.repair.contacts = 12;  // explicit per-block point budget
  Cluster cluster(cfg);
  const Bytes file = MakeFile(2000);
  cluster.Upload(1, file);
  const std::vector<std::uint32_t> batch{5};
  ASSERT_TRUE(cluster.hypervisor().RebootAndRecover(batch));
  EXPECT_EQ(cluster.Download(ReadSpec::Classic(1)), file);
}

// ---------------------------------------------------------------------------
// Serving plane: policy-driven download op
// ---------------------------------------------------------------------------

TEST(CommServing, PlaneDefaultAndPerRequestPolicyAgree) {
  ServingConfig cfg;
  cfg.shards = 1;
  cfg.params = pss::Params::Natural(16, 256);
  cfg.seed = 41;
  cfg.read_policy = ReadSpec::Staircase(0).policy;  // plane-wide staircase
  ServingPlane plane(cfg);
  const std::uint64_t session = plane.OpenSession();
  const Bytes file = MakeFile(1500);

  ASSERT_EQ(plane.Submit(session, net::ServingOp::kUpload, 10, file).status,
            net::ServingStatus::kOk);
  plane.Drain();
  // Download under the plane default (staircase, empty payload)...
  ASSERT_EQ(plane.Submit(session, net::ServingOp::kDownload, 10, {}).status,
            net::ServingStatus::kOk);
  // ...and under an explicit per-request classic override.
  ASSERT_EQ(plane
                .Submit(session, net::ServingOp::kDownload, 10,
                        ReadSpec::Classic(0).policy.Serialize())
                .status,
            net::ServingStatus::kOk);
  plane.Drain();
  std::size_t downloads = 0;
  for (const auto& c : plane.TakeCompletions()) {
    if (c.op != net::ServingOp::kDownload) continue;
    ++downloads;
    EXPECT_EQ(c.status, net::ServingStatus::kOk);
    EXPECT_EQ(c.payload, file);
  }
  EXPECT_EQ(downloads, 2u);
}

TEST(CommServing, GarbagePolicyPayloadFailsTheRequestNotThePlane) {
  ServingConfig cfg;
  cfg.shards = 1;
  cfg.params.n = 8;
  cfg.params.t = 1;
  cfg.params.l = 2;
  cfg.params.r = 2;
  cfg.params.field_bits = 256;
  cfg.seed = 43;
  ServingPlane plane(cfg);
  const std::uint64_t session = plane.OpenSession();
  const Bytes file = MakeFile(256);
  ASSERT_EQ(plane.Submit(session, net::ServingOp::kUpload, 10, file).status,
            net::ServingStatus::kOk);
  plane.Drain();
  ASSERT_EQ(
      plane.Submit(session, net::ServingOp::kDownload, 10, Bytes{0xFF}).status,
      net::ServingStatus::kOk);  // admitted; fails at execution
  plane.Drain();
  bool saw_failed = false;
  for (const auto& c : plane.TakeCompletions()) {
    if (c.op == net::ServingOp::kDownload) {
      EXPECT_EQ(c.status, net::ServingStatus::kFailed);
      saw_failed = true;
    }
  }
  EXPECT_TRUE(saw_failed);
  // The plane still serves: a clean download right after.
  ASSERT_EQ(plane.Submit(session, net::ServingOp::kDownload, 10, {}).status,
            net::ServingStatus::kOk);
  plane.Drain();
  for (const auto& c : plane.TakeCompletions()) {
    if (c.op == net::ServingOp::kDownload) {
      EXPECT_EQ(c.status, net::ServingStatus::kOk);
      EXPECT_EQ(c.payload, file);
    }
  }
}

// ---------------------------------------------------------------------------
// StatusCode unification
// ---------------------------------------------------------------------------

TEST(CommStatus, WireValuesAreFrozenAndNamed) {
  // The first seven values are serving-frame wire bytes; changing any of
  // them breaks golden frames and live gateways.
  EXPECT_EQ(static_cast<int>(StatusCode::kOk), 0);
  EXPECT_EQ(static_cast<int>(StatusCode::kRejected), 1);
  EXPECT_EQ(static_cast<int>(StatusCode::kDuplicate), 2);
  EXPECT_EQ(static_cast<int>(StatusCode::kNotFound), 3);
  EXPECT_EQ(static_cast<int>(StatusCode::kBadRoute), 4);
  EXPECT_EQ(static_cast<int>(StatusCode::kBadSession), 5);
  EXPECT_EQ(static_cast<int>(StatusCode::kFailed), 6);
  EXPECT_EQ(kMaxWireStatus, 6);
  EXPECT_EQ(net::kMaxServingStatus, kMaxWireStatus);
  EXPECT_STREQ(StatusName(StatusCode::kOk), "Ok");
  EXPECT_STREQ(StatusName(StatusCode::kBadSession), "BadSession");
  EXPECT_STREQ(StatusName(StatusCode::kTimeout), "Timeout");
  EXPECT_STREQ(StatusName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusName(StatusCode::kBadFrame), "BadFrame");
}

TEST(CommStatus, ExtendedCodesNeverSerialize) {
  net::ServingResponseFrame resp;
  resp.session = 1;
  resp.request = 1;
  resp.status = StatusCode::kTimeout;  // local-only code
  EXPECT_THROW(resp.Serialize(), Error);
  resp.status = StatusCode::kFailed;  // largest wire code still serializes
  EXPECT_NO_THROW(resp.Serialize());
}

}  // namespace
}  // namespace pisces
