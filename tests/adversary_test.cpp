// Mobile-adversary simulations: the security claims of the paper, executed.
//
// These tests run the real attack: an adversary snapshots shares from
// corrupted hosts and tries to reconstruct the file. Proactive refresh must
// make cross-period share collections useless, while a same-period collection
// above the reconstruction threshold must succeed (sanity that the attack
// machinery itself works).
#include <gtest/gtest.h>

#include "pisces/pisces.h"

namespace pisces {
namespace {

ClusterConfig Config() {
  ClusterConfig cfg;
  cfg.params.n = 8;
  cfg.params.t = 1;
  cfg.params.l = 2;  // d = 3, reconstruction needs d+1 = 4 shares
  cfg.params.r = 2;
  cfg.params.field_bits = 256;
  cfg.seed = 21;
  return cfg;
}

TEST(Adversary, WithinThresholdNeverBreaches) {
  Cluster cluster(Config());
  Rng rng(1);
  Bytes file = rng.RandomBytes(600);
  cluster.Upload(1, file);

  Adversary adv(cluster);
  // t = 1 corruption per period, rotating over all hosts across many periods.
  for (std::uint32_t w = 0; w < 8; ++w) {
    adv.Corrupt(w % 8);
    ASSERT_TRUE(cluster.RunUpdateWindow().ok);
    adv.ObserveWindow();
  }
  EXPECT_LE(adv.MaxSamePeriodShares(1), 2u);  // corrupt + its period re-read
  EXPECT_FALSE(adv.AttemptReconstruction(1).has_value());
}

TEST(Adversary, MixedPeriodSharesAreUseless) {
  Cluster cluster(Config());
  Rng rng(2);
  Bytes file = rng.RandomBytes(600);
  cluster.Upload(1, file);

  Adversary adv(cluster);
  // Across 8 periods the adversary has touched every host once -- the union
  // is far above d+1 shares, but never within one period.
  for (std::uint32_t w = 0; w < 8; ++w) {
    adv.Corrupt(w);
    ASSERT_TRUE(cluster.RunUpdateWindow().ok);
    adv.ObserveWindow();
  }
  // Deliberately mixing them must fail: refresh rotated the polynomials.
  EXPECT_FALSE(adv.AttemptMixedReconstruction(1).has_value());
  EXPECT_FALSE(adv.AttemptReconstruction(1).has_value());
}

TEST(Adversary, AboveThresholdSamePeriodBreaches) {
  Cluster cluster(Config());
  Rng rng(3);
  Bytes file = rng.RandomBytes(600);
  cluster.Upload(1, file);

  Adversary adv(cluster);
  // d+1 = 4 hosts corrupted in the SAME period: reconstruction must succeed
  // (this validates the attack harness and the sharpness of the threshold).
  for (std::uint32_t h = 0; h < 4; ++h) adv.Corrupt(h);
  EXPECT_TRUE(adv.ExceedsPrivacyThreshold(1));
  auto stolen = adv.AttemptReconstruction(1);
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(*stolen, file);
}

TEST(Adversary, RefreshInvalidatesYesterdaysShares) {
  Cluster cluster(Config());
  Rng rng(4);
  Bytes file = rng.RandomBytes(600);
  cluster.Upload(1, file);

  Adversary adv(cluster);
  // 3 shares today (one below reconstruction threshold)...
  for (std::uint32_t h = 0; h < 3; ++h) adv.Corrupt(h);
  ASSERT_TRUE(cluster.RunUpdateWindow().ok);
  adv.ObserveWindow();
  // ...plus 3 more tomorrow. Union = 6 >= d+1 = 4, but never same-period.
  for (std::uint32_t h = 3; h < 6; ++h) adv.Corrupt(h);
  EXPECT_FALSE(adv.AttemptReconstruction(1).has_value());
  EXPECT_FALSE(adv.AttemptMixedReconstruction(1).has_value());

  // Control: without the refresh between the two captures the same corruption
  // pattern DOES breach -- the refresh is what saved the file above.
  Cluster cluster2(Config());
  cluster2.Upload(1, file);
  Adversary adv2(cluster2);
  for (std::uint32_t h = 0; h < 3; ++h) adv2.Corrupt(h);
  for (std::uint32_t h = 3; h < 6; ++h) adv2.Corrupt(h);
  auto stolen = adv2.AttemptReconstruction(1);
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(*stolen, file);
}

TEST(Adversary, PrivacyThresholdCounting) {
  Cluster cluster(Config());
  Rng rng(5);
  cluster.Upload(1, rng.RandomBytes(100));
  Adversary adv(cluster);
  adv.Corrupt(0);
  EXPECT_FALSE(adv.ExceedsPrivacyThreshold(1));  // t = 1, exactly t
  adv.Corrupt(1);
  EXPECT_TRUE(adv.ExceedsPrivacyThreshold(1));  // t + 1 > t
  EXPECT_EQ(adv.MaxSamePeriodShares(1), 2u);
}

TEST(Adversary, RebootExpelsAdversary) {
  Cluster cluster(Config());
  Rng rng(6);
  cluster.Upload(1, rng.RandomBytes(100));
  Adversary adv(cluster);
  adv.Corrupt(3);
  EXPECT_EQ(adv.corrupted().size(), 1u);
  cluster.RunUpdateWindow();  // complete schedule reboots host 3
  adv.ObserveWindow();
  EXPECT_TRUE(adv.corrupted().empty());
}

TEST(Adversary, UnknownFileYieldsNothing) {
  Cluster cluster(Config());
  Adversary adv(cluster);
  adv.Corrupt(0);
  EXPECT_EQ(adv.MaxSamePeriodShares(42), 0u);
  EXPECT_FALSE(adv.AttemptReconstruction(42).has_value());
}

}  // namespace
}  // namespace pisces
