// Deserialization robustness: every wire-facing parser must reject arbitrary
// and truncated bytes with ParseError (never crash, never accept garbage),
// and mutated-but-parseable inputs must fail verification downstream.
//
// The structured fuzzer below starts from VALID wire messages and applies
// format-aware mutations (truncation, length-field lies, trailing garbage,
// byte flips) -- random blobs almost never get past the first length check,
// so structure-aware inputs exercise far deeper parser states. Default
// iteration counts keep the suite fast; set PISCES_FUZZ_ITERS to raise them
// for a longer sanitizer soak (scripts/check_sanitize.sh does).
#include <gtest/gtest.h>

#include <cstdlib>

#include "crypto/ca.h"
#include "field/primes.h"
#include "net/async_tcp.h"
#include "net/message.h"
#include "net/serving_frame.h"
#include "net/sim_transport.h"
#include "pisces/file_codec.h"
#include "pisces/serving_client.h"

namespace pisces {
namespace {

Bytes RandomBlob(Rng& rng, std::size_t max_len) {
  return rng.RandomBytes(rng.Below(max_len + 1));
}

std::size_t FuzzIters(std::size_t base) {
  if (const char* env = std::getenv("PISCES_FUZZ_ITERS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return base;
}

// A structurally valid message with randomized fields and payload.
net::Message RandomValidMessage(Rng& rng) {
  net::Message m;
  m.from = static_cast<std::uint32_t>(rng.Next());
  m.to = static_cast<std::uint32_t>(rng.Next());
  m.type = static_cast<net::MsgType>(rng.Below(net::kMaxMsgType + 1));
  m.file_id = rng.Next();
  m.epoch = static_cast<std::uint32_t>(rng.Next());
  m.batch = static_cast<std::uint32_t>(rng.Next());
  m.row = static_cast<std::uint32_t>(rng.Next());
  m.payload = RandomBlob(rng, 96);
  return m;
}

// Byte offset of the payload length prefix in the wire format.
constexpr std::size_t kLenOffset = 4 + 4 + 1 + 8 + 4 + 4 + 4;

TEST(Fuzz, MessageDeserializeNeverCrashes) {
  Rng rng(0xF122);
  std::size_t accepted = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    Bytes blob = RandomBlob(rng, 200);
    try {
      net::Message m = net::Message::Deserialize(blob);
      ++accepted;
      // Anything accepted must re-serialize to the same bytes.
      EXPECT_EQ(m.Serialize(), blob);
    } catch (const ParseError&) {
      // expected for almost all inputs
    }
  }
  // Random blobs essentially never form a valid message (needs exact length
  // linkage and a valid type byte).
  EXPECT_LT(accepted, 5u);
}

TEST(Fuzz, MessageTruncationAlwaysRejected) {
  net::Message m;
  m.from = 1;
  m.to = 2;
  m.type = net::MsgType::kDeal;
  m.payload = Bytes(37, 0xAB);
  Bytes wire = m.Serialize();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    Bytes cut(wire.begin(), wire.begin() + len);
    EXPECT_THROW(net::Message::Deserialize(cut), ParseError) << len;
  }
}

TEST(Fuzz, MessageStructuredMutationsNeverCrash) {
  Rng rng(0xF126);
  const std::size_t iters = FuzzIters(2000);
  for (std::size_t iter = 0; iter < iters; ++iter) {
    net::Message m = RandomValidMessage(rng);
    Bytes wire = m.Serialize();
    switch (rng.Below(4)) {
      case 0:  // truncate
        wire.resize(rng.Below(wire.size() + 1));
        break;
      case 1: {  // length-field lie
        StoreLe32(static_cast<std::uint32_t>(rng.Next()),
                  wire.data() + kLenOffset);
        break;
      }
      case 2: {  // trailing garbage
        Bytes extra = rng.RandomBytes(1 + rng.Below(16));
        wire.insert(wire.end(), extra.begin(), extra.end());
        break;
      }
      default:  // random byte flips
        for (std::size_t k = 0; k < 1 + rng.Below(4); ++k) {
          wire[rng.Below(wire.size())] ^=
              static_cast<std::uint8_t>(1u << rng.Below(8));
        }
        break;
    }
    try {
      net::Message out = net::Message::Deserialize(wire);
      // Anything accepted must round-trip bit-exactly: the parser may only
      // accept inputs it would itself produce.
      EXPECT_EQ(out.Serialize(), wire) << "iteration " << iter;
    } catch (const ParseError&) {
      // expected for most mutations
    }
  }
}

TEST(Fuzz, MessageLengthFieldLiesAlwaysRejected) {
  net::Message m;
  m.from = 7;
  m.to = 8;
  m.type = net::MsgType::kMaskedShare;
  m.payload = Bytes(21, 0x5C);
  const Bytes wire = m.Serialize();
  const std::uint32_t actual = static_cast<std::uint32_t>(m.payload.size());
  // Shorter claim -> trailing bytes; longer claim -> underflow; absurd claim
  // -> the kMaxPayload cap fires before any allocation.
  const std::uint32_t lies[] = {
      0, actual - 1, actual + 1, actual + 1000,
      static_cast<std::uint32_t>(net::kMaxPayload + 1), 0xFFFFFFFFu};
  for (std::uint32_t lie : lies) {
    Bytes bad = wire;
    StoreLe32(lie, bad.data() + kLenOffset);
    EXPECT_THROW(net::Message::Deserialize(bad), ParseError) << lie;
  }
}

TEST(Fuzz, MessageTrailingGarbageAlwaysRejected) {
  Rng rng(0xF127);
  net::Message m = RandomValidMessage(rng);
  const Bytes wire = m.Serialize();
  for (std::size_t extra = 1; extra <= 32; ++extra) {
    Bytes bad = wire;
    Bytes tail = rng.RandomBytes(extra);
    bad.insert(bad.end(), tail.begin(), tail.end());
    EXPECT_THROW(net::Message::Deserialize(bad), ParseError) << extra;
  }
}

TEST(Fuzz, MessagePayloadCapRejectedWithoutAllocation) {
  // A header claiming a payload just over the cap, with no payload bytes at
  // all: the cap check must fire (clean ParseError) before any attempt to
  // consume or allocate the claimed length.
  net::Message m;
  m.type = net::MsgType::kDeal;
  Bytes wire = m.Serialize();
  wire.resize(net::kWireHeaderSize);  // keep header + length prefix only
  StoreLe32(static_cast<std::uint32_t>(net::kMaxPayload + 1),
            wire.data() + kLenOffset);
  EXPECT_THROW(net::Message::Deserialize(wire), ParseError);
}

TEST(Fuzz, FrameLengthPrefixCapFiresBeforeAllocation) {
  // Transport framing (tcp_transport, async_tcp): the 4-byte frame length
  // prefix must be bounds-checked against kMaxFrameBytes before any buffer
  // for the claimed frame is allocated. FrameLengthAcceptable is that check;
  // an absurd prefix (a ~4 GiB claim from one malicious/corrupt peer) must
  // be rejected while every length an honest sender can produce passes.
  EXPECT_TRUE(net::FrameLengthAcceptable(0));  // keepalive frame
  EXPECT_TRUE(net::FrameLengthAcceptable(net::kHeartbeatFrameLen));
  EXPECT_TRUE(net::FrameLengthAcceptable(net::kWireHeaderSize));
  EXPECT_TRUE(net::FrameLengthAcceptable(net::kMaxFrameBytes));
  EXPECT_FALSE(net::FrameLengthAcceptable(net::kMaxFrameBytes + 1));
  EXPECT_FALSE(net::FrameLengthAcceptable(0xFFFFFFFFull));
  EXPECT_FALSE(net::FrameLengthAcceptable(~0ull));

  // Every serialized message an honest endpoint frames fits the cap.
  Rng rng(0xF128);
  for (int iter = 0; iter < 200; ++iter) {
    net::Message m = RandomValidMessage(rng);
    EXPECT_TRUE(net::FrameLengthAcceptable(m.Serialize().size()));
  }
}

TEST(Fuzz, FileMetaRejectsShortBlobs) {
  Rng rng(0xF123);
  for (int iter = 0; iter < 500; ++iter) {
    Bytes blob = RandomBlob(rng, 63);  // below the fixed encoding size
    EXPECT_THROW(FileMeta::Deserialize(blob), ParseError);
  }
}

TEST(Fuzz, CertDeserializeNeverCrashesAndNeverVerifies) {
  Rng rng(0xF124);
  const auto& group = crypto::SchnorrGroup::Default();
  crypto::CertAuthority ca(group, rng);
  for (int iter = 0; iter < 300; ++iter) {
    Bytes blob = RandomBlob(rng, 300);
    try {
      crypto::HostCert cert = crypto::HostCert::Deserialize(blob);
      EXPECT_FALSE(crypto::CertAuthority::VerifyCert(group, ca.public_key(),
                                                     cert));
    } catch (const ParseError&) {
    }
  }
}

TEST(Fuzz, BitFlippedCertNeverVerifies) {
  Rng rng(0xF125);
  const auto& group = crypto::SchnorrGroup::Default();
  crypto::CertAuthority ca(group, rng);
  auto [cert, sk] = ca.IssueHostKey(3, 1, rng);
  Bytes wire = cert.Serialize();
  for (int iter = 0; iter < 100; ++iter) {
    Bytes mutated = wire;
    mutated[rng.Below(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.Below(8));
    try {
      crypto::HostCert bad = crypto::HostCert::Deserialize(mutated);
      EXPECT_FALSE(
          crypto::CertAuthority::VerifyCert(group, ca.public_key(), bad))
          << "bit flip accepted at iteration " << iter;
    } catch (const Error&) {
      // Structurally destroyed -- also fine. (FromBytes may reject values
      // >= modulus with InvalidArgument before signature verification.)
    }
  }
}

// ---- multiplexed serving frames (net/serving_frame.h) ---------------------

net::ServingRequestFrame RandomValidServingRequest(Rng& rng) {
  net::ServingRequestFrame f;
  f.session = rng.Next();
  f.request = rng.Next();
  f.epoch = rng.Next();
  f.shard = static_cast<std::uint32_t>(rng.Next());
  f.op = static_cast<net::ServingOp>(rng.Below(net::kMaxServingOp + 1));
  f.file_id = rng.Next();
  f.payload = RandomBlob(rng, 96);
  return f;
}

net::ServingResponseFrame RandomValidServingResponse(Rng& rng) {
  net::ServingResponseFrame f;
  f.session = rng.Next();
  f.request = rng.Next();
  f.status =
      static_cast<net::ServingStatus>(rng.Below(net::kMaxServingStatus + 1));
  f.retry_after_ms = static_cast<std::uint32_t>(rng.Next());
  f.payload = RandomBlob(rng, 96);
  return f;
}

// Payload length-prefix offsets inside each frame (last header field).
constexpr std::size_t kReqLenOffset = net::kServingRequestHeaderSize - 4;
constexpr std::size_t kRespLenOffset = net::kServingResponseHeaderSize - 4;
// Op / status byte offsets (after session + request [+ epoch + shard]).
constexpr std::size_t kReqOpOffset = 8 + 8 + 8 + 4;
constexpr std::size_t kRespStatusOffset = 8 + 8;

TEST(Fuzz, ServingFrameDeserializeNeverCrashes) {
  Rng rng(0xF201);
  std::size_t accepted = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    Bytes blob = RandomBlob(rng, 160);
    try {
      auto f = net::ServingRequestFrame::Deserialize(blob);
      ++accepted;
      EXPECT_EQ(f.Serialize(), blob);
    } catch (const ParseError&) {
    }
    try {
      auto f = net::ServingResponseFrame::Deserialize(blob);
      ++accepted;
      EXPECT_EQ(f.Serialize(), blob);
    } catch (const ParseError&) {
    }
  }
  // Random blobs essentially never satisfy the length linkage plus the
  // op/status validity check.
  EXPECT_LT(accepted, 5u);
}

TEST(Fuzz, ServingFrameStructuredMutationsNeverCrash) {
  Rng rng(0xF202);
  const std::size_t iters = FuzzIters(2000);
  for (std::size_t iter = 0; iter < iters; ++iter) {
    const bool request_side = rng.Below(2) == 0;
    Bytes wire = request_side ? RandomValidServingRequest(rng).Serialize()
                              : RandomValidServingResponse(rng).Serialize();
    const std::size_t len_off = request_side ? kReqLenOffset : kRespLenOffset;
    switch (rng.Below(4)) {
      case 0:  // truncate
        wire.resize(rng.Below(wire.size() + 1));
        break;
      case 1:  // length-field lie
        StoreLe32(static_cast<std::uint32_t>(rng.Next()),
                  wire.data() + len_off);
        break;
      case 2: {  // trailing garbage
        Bytes extra = rng.RandomBytes(1 + rng.Below(16));
        wire.insert(wire.end(), extra.begin(), extra.end());
        break;
      }
      default:  // random byte flips
        for (std::size_t k = 0; k < 1 + rng.Below(4); ++k) {
          wire[rng.Below(wire.size())] ^=
              static_cast<std::uint8_t>(1u << rng.Below(8));
        }
        break;
    }
    // Anything accepted must round-trip bit-exactly; anything else must be a
    // clean ParseError, never a crash or a silent default.
    try {
      if (request_side) {
        EXPECT_EQ(net::ServingRequestFrame::Deserialize(wire).Serialize(),
                  wire)
            << "iteration " << iter;
      } else {
        EXPECT_EQ(net::ServingResponseFrame::Deserialize(wire).Serialize(),
                  wire)
            << "iteration " << iter;
      }
    } catch (const ParseError&) {
    }
  }
}

TEST(Fuzz, ServingFrameTruncationAlwaysRejected) {
  Rng rng(0xF203);
  Bytes req = RandomValidServingRequest(rng).Serialize();
  for (std::size_t len = 0; len < req.size(); ++len) {
    Bytes cut(req.begin(), req.begin() + len);
    EXPECT_THROW(net::ServingRequestFrame::Deserialize(cut), ParseError)
        << len;
  }
  Bytes resp = RandomValidServingResponse(rng).Serialize();
  for (std::size_t len = 0; len < resp.size(); ++len) {
    Bytes cut(resp.begin(), resp.begin() + len);
    EXPECT_THROW(net::ServingResponseFrame::Deserialize(cut), ParseError)
        << len;
  }
}

TEST(Fuzz, ServingFramePayloadCapRejectedBeforeAllocation) {
  // A length field claiming a payload over the serving cap must throw on the
  // ANNOUNCED length -- before any buffer for it exists. A tiny frame lying
  // about a multi-GiB payload is the attack shape.
  Rng rng(0xF204);
  for (std::uint64_t lie :
       {static_cast<std::uint64_t>(net::kMaxServingPayload) + 1,
        std::uint64_t{0x40000000}, std::uint64_t{0xFFFFFFFF}}) {
    Bytes req = RandomValidServingRequest(rng).Serialize();
    req.resize(net::kServingRequestHeaderSize);  // drop any real payload
    StoreLe32(static_cast<std::uint32_t>(lie), req.data() + kReqLenOffset);
    EXPECT_THROW(net::ServingRequestFrame::Deserialize(req), ParseError);

    Bytes resp = RandomValidServingResponse(rng).Serialize();
    resp.resize(net::kServingResponseHeaderSize);
    StoreLe32(static_cast<std::uint32_t>(lie), resp.data() + kRespLenOffset);
    EXPECT_THROW(net::ServingResponseFrame::Deserialize(resp), ParseError);
  }
}

TEST(Fuzz, ServingFrameUnknownOpAndStatusRejected) {
  Rng rng(0xF205);
  for (std::uint32_t bad = net::kMaxServingOp + 1; bad <= 0xFF; ++bad) {
    Bytes req = RandomValidServingRequest(rng).Serialize();
    req[kReqOpOffset] = static_cast<std::uint8_t>(bad);
    EXPECT_THROW(net::ServingRequestFrame::Deserialize(req), ParseError)
        << "op byte " << bad;
  }
  for (std::uint32_t bad = net::kMaxServingStatus + 1; bad <= 0xFF; ++bad) {
    Bytes resp = RandomValidServingResponse(rng).Serialize();
    resp[kRespStatusOffset] = static_cast<std::uint8_t>(bad);
    EXPECT_THROW(net::ServingResponseFrame::Deserialize(resp), ParseError)
        << "status byte " << bad;
  }
}

// ---- versioned routing maps (net/serving_frame.h) --------------------------

net::RoutingMap RandomValidRoutingMap(Rng& rng) {
  net::RoutingMap m;
  m.epoch = rng.Next();
  const std::size_t count = rng.Below(6);
  for (std::size_t i = 0; i < count; ++i) {
    net::RoutingShard s;
    s.n = static_cast<std::uint32_t>(rng.Next());
    s.t = static_cast<std::uint32_t>(rng.Next());
    s.migrating = static_cast<std::uint8_t>(rng.Below(2));
    m.shards.push_back(s);
  }
  return m;
}

TEST(Fuzz, RoutingMapDeserializeNeverCrashes) {
  Rng rng(0xF301);
  std::size_t accepted = 0;
  for (std::size_t iter = 0; iter < FuzzIters(2000); ++iter) {
    Bytes blob = RandomBlob(rng, 120);
    try {
      net::RoutingMap m = net::RoutingMap::Deserialize(blob);
      // Anything accepted must round-trip bit-exactly.
      EXPECT_EQ(m.Serialize(), blob);
      ++accepted;
    } catch (const ParseError&) {
      // expected for almost everything
    }
  }
  (void)accepted;
}

TEST(Fuzz, RoutingMapTruncationAlwaysRejected) {
  Rng rng(0xF302);
  net::RoutingMap m = RandomValidRoutingMap(rng);
  while (m.shards.empty()) m = RandomValidRoutingMap(rng);
  const Bytes wire = m.Serialize();
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    Bytes prefix(wire.begin(), wire.begin() + cut);
    EXPECT_THROW(net::RoutingMap::Deserialize(prefix), ParseError)
        << "prefix length " << cut;
  }
}

TEST(Fuzz, RoutingMapShardCountLieRejectedBeforeAllocation) {
  // A map announcing more shards than the cap must be rejected on the
  // announced count alone -- the buffer holds no entries at all, so any
  // attempt to reserve/read them first would be an allocation-before-check
  // bug (or a wild read).
  for (std::uint64_t lie :
       {std::uint64_t{net::kMaxRoutingShards + 1}, std::uint64_t{1} << 20,
        std::uint64_t{0xFFFFFFFF}}) {
    ByteWriter w;
    w.U64(7);  // epoch
    w.U32(static_cast<std::uint32_t>(lie));
    EXPECT_THROW(net::RoutingMap::Deserialize(w.bytes()), ParseError)
        << "count lie " << lie;
  }
  // In-cap counts with missing entries reject on truncation, not crash.
  ByteWriter w;
  w.U64(7);
  w.U32(3);
  EXPECT_THROW(net::RoutingMap::Deserialize(w.bytes()), ParseError);
}

TEST(Fuzz, RoutingMapBadMigratingByteRejected) {
  net::RoutingMap m;
  m.epoch = 9;
  m.shards.push_back({4, 1, 0});
  Bytes wire = m.Serialize();
  // The migrating byte is the last byte of the single entry.
  for (std::uint32_t bad = 2; bad <= 0xFF; ++bad) {
    wire.back() = static_cast<std::uint8_t>(bad);
    EXPECT_THROW(net::RoutingMap::Deserialize(wire), ParseError)
        << "migrating byte " << bad;
  }
}

TEST(Fuzz, RoutingMapEpochRollbackRefusedByClient) {
  net::SimNet simnet;
  net::SimEndpoint* ep = simnet.AddEndpoint(1);
  ServingWireClient client(WireClientConfig{}, *ep);

  net::RoutingMap m;
  m.epoch = 5;
  m.shards.push_back({9, 2, 0});
  ASSERT_TRUE(client.AdoptMap(m));
  EXPECT_EQ(client.map().epoch, 5u);

  // Equal and older epochs are both refused; the adopted map is untouched.
  EXPECT_FALSE(client.AdoptMap(m));
  m.epoch = 3;
  m.shards[0].n = 13;
  EXPECT_FALSE(client.AdoptMap(m));
  EXPECT_EQ(client.map().epoch, 5u);
  EXPECT_EQ(client.map().shards[0].n, 9u);

  m.epoch = 6;
  EXPECT_TRUE(client.AdoptMap(m));
  EXPECT_EQ(client.map().shards[0].n, 13u);
}

// The wire layouts are frozen: golden byte images, like the 12-byte
// staircase descriptor contract in comm_test.cpp. Changing any offset here
// breaks live gateways mid-rollout.
TEST(Fuzz, ServingRequestFrameLayoutFrozen) {
  net::ServingRequestFrame f;
  f.session = 0x1122334455667788ull;
  f.request = 0x99AABBCCDDEEFF00ull;
  f.epoch = 0x0102030405060708ull;
  f.shard = 0x0A0B0C0Du;
  f.op = net::ServingOp::kDownload;
  f.file_id = 0x1020304050607080ull;
  f.payload = Bytes{0xAA, 0xBB};

  const Bytes expected{
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,  // session (le)
      0x00, 0xFF, 0xEE, 0xDD, 0xCC, 0xBB, 0xAA, 0x99,  // request (le)
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // epoch (le)
      0x0D, 0x0C, 0x0B, 0x0A,                          // shard (le)
      0x01,                                            // op = kDownload
      0x80, 0x70, 0x60, 0x50, 0x40, 0x30, 0x20, 0x10,  // file_id (le)
      0x02, 0x00, 0x00, 0x00,                          // payload length
      0xAA, 0xBB,
  };
  ASSERT_EQ(expected.size(), net::kServingRequestHeaderSize + 2);
  EXPECT_EQ(f.Serialize(), expected);
  EXPECT_EQ(net::ServingRequestFrame::Deserialize(expected).Serialize(),
            expected);
}

TEST(Fuzz, RoutingMapLayoutFrozen) {
  net::RoutingMap m;
  m.epoch = 0x0102030405060708ull;
  m.shards.push_back({9, 2, 0});
  m.shards.push_back({13, 3, 1});

  const Bytes expected{
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // epoch (le)
      0x02, 0x00, 0x00, 0x00,                          // shard count
      0x09, 0x00, 0x00, 0x00,                          // shard 0: n
      0x02, 0x00, 0x00, 0x00,                          //          t
      0x00,                                            //          migrating
      0x0D, 0x00, 0x00, 0x00,                          // shard 1: n
      0x03, 0x00, 0x00, 0x00,                          //          t
      0x01,                                            //          migrating
  };
  ASSERT_EQ(expected.size(),
            net::kRoutingMapHeaderSize + 2 * net::kRoutingShardSize);
  EXPECT_EQ(m.Serialize(), expected);
  EXPECT_EQ(net::RoutingMap::Deserialize(expected).Serialize(), expected);
}

TEST(Fuzz, ElemDeserializeRejectsOverflowAndRagged) {
  field::FpCtx ctx(field::StandardPrimeBe(256));
  // Ragged length.
  Bytes ragged(33, 0);
  EXPECT_THROW(field::DeserializeElems(ctx, ragged), ParseError);
  // Value >= modulus.
  Bytes big(32, 0xFF);
  EXPECT_THROW(field::DeserializeElems(ctx, big), InvalidArgument);
}

}  // namespace
}  // namespace pisces
