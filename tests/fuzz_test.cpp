// Deserialization robustness: every wire-facing parser must reject arbitrary
// and truncated bytes with ParseError (never crash, never accept garbage),
// and mutated-but-parseable inputs must fail verification downstream.
#include <gtest/gtest.h>

#include "crypto/ca.h"
#include "field/primes.h"
#include "net/message.h"
#include "pisces/file_codec.h"

namespace pisces {
namespace {

Bytes RandomBlob(Rng& rng, std::size_t max_len) {
  return rng.RandomBytes(rng.Below(max_len + 1));
}

TEST(Fuzz, MessageDeserializeNeverCrashes) {
  Rng rng(0xF122);
  std::size_t accepted = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    Bytes blob = RandomBlob(rng, 200);
    try {
      net::Message m = net::Message::Deserialize(blob);
      ++accepted;
      // Anything accepted must re-serialize to the same bytes.
      EXPECT_EQ(m.Serialize(), blob);
    } catch (const ParseError&) {
      // expected for almost all inputs
    }
  }
  // Random blobs essentially never form a valid message (needs exact length
  // linkage and a valid type byte).
  EXPECT_LT(accepted, 5u);
}

TEST(Fuzz, MessageTruncationAlwaysRejected) {
  net::Message m;
  m.from = 1;
  m.to = 2;
  m.type = net::MsgType::kDeal;
  m.payload = Bytes(37, 0xAB);
  Bytes wire = m.Serialize();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    Bytes cut(wire.begin(), wire.begin() + len);
    EXPECT_THROW(net::Message::Deserialize(cut), ParseError) << len;
  }
}

TEST(Fuzz, FileMetaRejectsShortBlobs) {
  Rng rng(0xF123);
  for (int iter = 0; iter < 500; ++iter) {
    Bytes blob = RandomBlob(rng, 63);  // below the fixed encoding size
    EXPECT_THROW(FileMeta::Deserialize(blob), ParseError);
  }
}

TEST(Fuzz, CertDeserializeNeverCrashesAndNeverVerifies) {
  Rng rng(0xF124);
  const auto& group = crypto::SchnorrGroup::Default();
  crypto::CertAuthority ca(group, rng);
  for (int iter = 0; iter < 300; ++iter) {
    Bytes blob = RandomBlob(rng, 300);
    try {
      crypto::HostCert cert = crypto::HostCert::Deserialize(blob);
      EXPECT_FALSE(crypto::CertAuthority::VerifyCert(group, ca.public_key(),
                                                     cert));
    } catch (const ParseError&) {
    }
  }
}

TEST(Fuzz, BitFlippedCertNeverVerifies) {
  Rng rng(0xF125);
  const auto& group = crypto::SchnorrGroup::Default();
  crypto::CertAuthority ca(group, rng);
  auto [cert, sk] = ca.IssueHostKey(3, 1, rng);
  Bytes wire = cert.Serialize();
  for (int iter = 0; iter < 100; ++iter) {
    Bytes mutated = wire;
    mutated[rng.Below(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.Below(8));
    try {
      crypto::HostCert bad = crypto::HostCert::Deserialize(mutated);
      EXPECT_FALSE(
          crypto::CertAuthority::VerifyCert(group, ca.public_key(), bad))
          << "bit flip accepted at iteration " << iter;
    } catch (const Error&) {
      // Structurally destroyed -- also fine. (FromBytes may reject values
      // >= modulus with InvalidArgument before signature verification.)
    }
  }
}

TEST(Fuzz, ElemDeserializeRejectsOverflowAndRagged) {
  field::FpCtx ctx(field::StandardPrimeBe(256));
  // Ragged length.
  Bytes ragged(33, 0);
  EXPECT_THROW(field::DeserializeElems(ctx, ragged), ParseError);
  // Value >= modulus.
  Bytes big(32, 0xFF);
  EXPECT_THROW(field::DeserializeElems(ctx, big), InvalidArgument);
}

}  // namespace
}  // namespace pisces
