// File codec tests: framing, padding accounting, integrity detection.
#include <gtest/gtest.h>

#include "field/primes.h"
#include "pisces/file_codec.h"

namespace pisces {
namespace {

class CodecTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  CodecTest() : ctx_(field::StandardPrimeBe(GetParam())), rng_(5) {}
  field::FpCtx ctx_;
  Rng rng_;
};

TEST_P(CodecTest, RoundTripVariousSizes) {
  FileCodec codec(ctx_, 4);
  for (std::size_t size : {0u, 1u, 7u, 100u, 1000u, 4096u}) {
    Bytes data = rng_.RandomBytes(size);
    auto [meta, elems] = codec.Encode(42, data);
    EXPECT_EQ(meta.raw_size, size);
    EXPECT_EQ(elems.size(), meta.num_blocks * 4);
    EXPECT_GE(elems.size(), meta.num_elems);
    Bytes back = codec.Decode(meta, elems);
    EXPECT_EQ(back, data) << size;
  }
}

TEST_P(CodecTest, SizeAccounting) {
  FileCodec codec(ctx_, 6);
  const std::size_t payload = ctx_.payload_bytes();
  for (std::size_t size : {1u, 100u, 10240u}) {
    EXPECT_EQ(codec.ElemsFor(size), (8 + size + payload - 1) / payload);
    EXPECT_EQ(codec.BlocksFor(size), (codec.ElemsFor(size) + 5) / 6);
    EXPECT_EQ(codec.PaddingFor(size),
              codec.BlocksFor(size) * 6 * payload - size);
  }
}

TEST_P(CodecTest, PerBytePaddingShrinksWithFileSize) {
  FileCodec codec(ctx_, 6);
  double small = static_cast<double>(codec.PaddingFor(10 * 1024)) / (10 * 1024);
  double large =
      static_cast<double>(codec.PaddingFor(1024 * 1024)) / (1024 * 1024);
  EXPECT_LT(large, small);  // the paper's SectionVII-B observation
}

TEST_P(CodecTest, CorruptionDetected) {
  FileCodec codec(ctx_, 3);
  Bytes data = rng_.RandomBytes(500);
  auto [meta, elems] = codec.Encode(1, data);
  // Flip one element.
  auto bad = elems;
  bad[2] = ctx_.Add(bad[2], ctx_.One());
  EXPECT_THROW(codec.Decode(meta, bad), ParseError);
  // Truncated element list.
  auto missing = elems;
  missing.resize(meta.num_elems - 1);
  EXPECT_THROW(codec.Decode(meta, missing), ParseError);
  // Wrong meta length.
  FileMeta wrong = meta;
  wrong.raw_size += 1;
  EXPECT_THROW(codec.Decode(wrong, elems), ParseError);
}

TEST_P(CodecTest, MetaSerialization) {
  FileCodec codec(ctx_, 3);
  auto [meta, elems] = codec.Encode(77, rng_.RandomBytes(300));
  FileMeta back = FileMeta::Deserialize(meta.Serialize());
  EXPECT_EQ(back.file_id, meta.file_id);
  EXPECT_EQ(back.raw_size, meta.raw_size);
  EXPECT_EQ(back.num_elems, meta.num_elems);
  EXPECT_EQ(back.num_blocks, meta.num_blocks);
  EXPECT_EQ(back.checksum, meta.checksum);
}

INSTANTIATE_TEST_SUITE_P(Fields, CodecTest, ::testing::Values(256, 1024));

}  // namespace
}  // namespace pisces
