// Loopback TCP transport tests.
#include <gtest/gtest.h>

#include <unistd.h>

#include "net/tcp_transport.h"

namespace pisces::net {
namespace {

std::uint16_t BasePort() {
  // Spread across runs to dodge TIME_WAIT collisions.
  return static_cast<std::uint16_t>(40000 + (::getpid() % 2000) * 10);
}

Message Make(std::uint32_t from, std::uint32_t to, Bytes payload) {
  Message m;
  m.from = from;
  m.to = to;
  m.type = MsgType::kDeal;
  m.payload = std::move(payload);
  return m;
}

TEST(TcpTransport, SendReceiveRoundTrip) {
  std::uint16_t base = BasePort();
  TcpEndpoint a(1, base);
  TcpEndpoint b(2, static_cast<std::uint16_t>(base + 1));
  a.AddPeer(2, static_cast<std::uint16_t>(base + 1));
  b.AddPeer(1, base);

  a.Send(Make(1, 2, Bytes{1, 2, 3}));
  auto m = b.ReceiveWait(2000);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->from, 1u);
  EXPECT_EQ(m->payload, (Bytes{1, 2, 3}));
  EXPECT_GT(a.bytes_sent(), 0u);
}

TEST(TcpTransport, BidirectionalAndOrdered) {
  std::uint16_t base = static_cast<std::uint16_t>(BasePort() + 2);
  TcpEndpoint a(1, base);
  TcpEndpoint b(2, static_cast<std::uint16_t>(base + 1));
  a.AddPeer(2, static_cast<std::uint16_t>(base + 1));
  b.AddPeer(1, base);

  for (std::uint8_t i = 0; i < 20; ++i) a.Send(Make(1, 2, Bytes{i}));
  for (std::uint8_t i = 0; i < 20; ++i) {
    auto m = b.ReceiveWait(2000);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->payload[0], i);  // per-link FIFO
  }
  b.Send(Make(2, 1, Bytes{0xAA}));
  auto back = a.ReceiveWait(2000);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->payload[0], 0xAA);
}

TEST(TcpTransport, LargePayload) {
  std::uint16_t base = static_cast<std::uint16_t>(BasePort() + 4);
  TcpEndpoint a(1, base);
  TcpEndpoint b(2, static_cast<std::uint16_t>(base + 1));
  a.AddPeer(2, static_cast<std::uint16_t>(base + 1));

  Bytes big(1 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 7);
  }
  a.Send(Make(1, 2, big));
  auto m = b.ReceiveWait(5000);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload, big);
}

TEST(TcpTransport, ReceiveWaitTimesOut) {
  std::uint16_t base = static_cast<std::uint16_t>(BasePort() + 6);
  TcpEndpoint a(1, base);
  EXPECT_FALSE(a.ReceiveWait(50).has_value());
  EXPECT_FALSE(a.Receive().has_value());
}

TEST(TcpTransport, UnknownPeerThrows) {
  std::uint16_t base = static_cast<std::uint16_t>(BasePort() + 7);
  TcpEndpoint a(1, base);
  EXPECT_THROW(a.Send(Make(1, 99, Bytes{1})), Error);
  EXPECT_THROW(a.Send(Make(2, 1, Bytes{1})), InvalidArgument);  // wrong from
}

TEST(TcpTransport, MeshOfFour) {
  std::uint16_t base = static_cast<std::uint16_t>(BasePort() + 8);
  std::vector<std::unique_ptr<TcpEndpoint>> eps;
  for (std::uint32_t i = 0; i < 4; ++i) {
    eps.push_back(std::make_unique<TcpEndpoint>(
        i, static_cast<std::uint16_t>(base + i)));
  }
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::uint32_t j = 0; j < 4; ++j) {
      if (i != j) eps[i]->AddPeer(j, static_cast<std::uint16_t>(base + j));
    }
  }
  // Everyone sends to everyone.
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::uint32_t j = 0; j < 4; ++j) {
      if (i != j) eps[i]->Send(Make(i, j, Bytes{static_cast<std::uint8_t>(i)}));
    }
  }
  for (std::uint32_t j = 0; j < 4; ++j) {
    std::set<std::uint8_t> senders;
    for (int k = 0; k < 3; ++k) {
      auto m = eps[j]->ReceiveWait(2000);
      ASSERT_TRUE(m.has_value());
      senders.insert(m->payload[0]);
    }
    EXPECT_EQ(senders.size(), 3u);
  }
}

}  // namespace
}  // namespace pisces::net
