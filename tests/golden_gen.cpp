// Writes the golden known-answer vector files consumed by golden_test.
// Usage: golden_gen <output-dir>   (scripts/gen_golden.sh wraps this)
#include <cstdio>
#include <fstream>
#include <string>

#include "golden_common.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: golden_gen <output-dir>\n");
    return 2;
  }
  const std::string dir = argv[1];
  for (std::size_t bits : {256, 512, 1024, 2048}) {
    const std::string path = dir + "/golden_" + std::to_string(bits) + ".txt";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "golden_gen: cannot write %s\n", path.c_str());
      return 1;
    }
    out << pisces::golden::Transcript(bits);
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
