// Differential suite for the width-specialized Montgomery kernels and the
// lazy-reduction dot product (field/fp_kernels.h, docs/field_kernels.md).
//
// The contract under test: for every standard prime size, the specialized
// kernels (Mul, Sqr) and the lazy Dot/DotAcc produce limb-for-limb identical
// results to the generic runtime-width CIOS oracle (an FpCtx constructed with
// KernelDispatch::kGeneric) and to the naive fold of Add(Mul(...)). Operands
// cover the edges the reduction bounds care about: 0, 1, 2, p-1, p-2, and the
// top-bit value 2^{g-1} (p is the largest prime below 2^g, so p-1 is the
// largest representable value "just below 2^g").
//
// Everything is seeded -- a failure reproduces exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "field/fp.h"
#include "field/primes.h"

namespace pisces::field {
namespace {

class FieldKernelTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  FieldKernelTest()
      : fast_(StandardPrimeBe(GetParam())),
        oracle_(StandardPrimeBe(GetParam()), KernelDispatch::kGeneric),
        rng_(0xD07D07 ^ GetParam()) {}

  // Edge operands plus seeded random draws. Elements are context-agnostic
  // bit patterns (both contexts share the modulus), so values built with
  // either context compare bitwise.
  std::vector<FpElem> Operands(int randoms) {
    std::vector<FpElem> ops;
    ops.push_back(fast_.Zero());
    ops.push_back(fast_.One());
    ops.push_back(fast_.FromUint64(2));
    Bytes p_be = fast_.ModulusBytes();
    // p - 1 and p - 2 as little-endian byte strings.
    Bytes le(p_be.rbegin(), p_be.rend());
    le[0] -= 1;  // p is odd, so p-1 only touches the low byte
    ops.push_back(fast_.FromBytes(le));
    le[0] -= 1;
    ops.push_back(fast_.FromBytes(le));
    // 2^{g-1}: the top-bit value (< p since p is a g-bit prime).
    Bytes top(fast_.elem_bytes(), 0);
    top[top.size() - 1] = 0x80;
    ops.push_back(fast_.FromBytes(top));
    for (int i = 0; i < randoms; ++i) ops.push_back(fast_.Random(rng_));
    return ops;
  }

  // Scale work down at the large widths (the oracle is slow by design).
  int Randoms() const { return GetParam() <= 512 ? 12 : 4; }

  FpCtx fast_;
  FpCtx oracle_;
  Rng rng_;
};

TEST_P(FieldKernelTest, DispatchSelectsSpecializedWidth) {
  EXPECT_EQ(fast_.kernel_width(), GetParam() / 64);
  EXPECT_EQ(oracle_.kernel_width(), 0u);
  EXPECT_EQ(fast_.limbs(), oracle_.limbs());
}

TEST_P(FieldKernelTest, MulMatchesGenericOracle) {
  auto ops = Operands(Randoms());
  for (const FpElem& a : ops) {
    for (const FpElem& b : ops) {
      EXPECT_EQ(fast_.Mul(a, b), oracle_.Mul(a, b));
    }
  }
}

TEST_P(FieldKernelTest, SqrMatchesMulAndOracle) {
  auto ops = Operands(Randoms());
  for (const FpElem& a : ops) {
    FpElem s = fast_.Sqr(a);
    EXPECT_EQ(s, fast_.Mul(a, a));       // specialized sqr vs specialized mul
    EXPECT_EQ(s, oracle_.Sqr(a));        // vs generic sqr kernel
    EXPECT_EQ(s, oracle_.Mul(a, a));     // vs generic CIOS oracle
  }
}

TEST_P(FieldKernelTest, PowRidesOnSqr) {
  for (int i = 0; i < 4; ++i) {
    FpElem a = fast_.Random(rng_);
    EXPECT_EQ(fast_.PowUint64(a, 1), oracle_.PowUint64(a, 1));
    EXPECT_EQ(fast_.PowUint64(a, 2), oracle_.PowUint64(a, 2));
    EXPECT_EQ(fast_.PowUint64(a, 0x123456789), oracle_.PowUint64(a, 0x123456789));
  }
}

TEST_P(FieldKernelTest, DotMatchesNaiveFoldAtAllLengths) {
  for (std::size_t n : {0u, 1u, 2u, 3u, 7u, 32u, 100u}) {
    std::vector<FpElem> a, b;
    for (std::size_t i = 0; i < n; ++i) {
      a.push_back(fast_.Random(rng_));
      b.push_back(fast_.Random(rng_));
    }
    FpElem naive = fast_.Zero();
    for (std::size_t i = 0; i < n; ++i) {
      naive = fast_.Add(naive, fast_.Mul(a[i], b[i]));
    }
    EXPECT_EQ(fast_.Dot(a, b), naive) << "n=" << n;
    EXPECT_EQ(oracle_.Dot(a, b), naive) << "generic lazy path, n=" << n;
  }
}

TEST_P(FieldKernelTest, DotEdgeOperandsMaximizeAccumulator) {
  // All-(p-1) vectors maximize every product; length 100 stresses the
  // carry ripple into the accumulator's top limb.
  auto ops = Operands(0);
  const FpElem pm1 = ops[3];
  std::vector<FpElem> a(100, pm1), b(100, pm1);
  FpElem naive = fast_.Zero();
  for (std::size_t i = 0; i < a.size(); ++i) {
    naive = fast_.Add(naive, fast_.Mul(a[i], b[i]));
  }
  EXPECT_EQ(fast_.Dot(a, b), naive);
  EXPECT_EQ(oracle_.Dot(a, b), naive);
  // Mixed edges against randoms.
  std::vector<FpElem> c = Operands(6);
  std::vector<FpElem> d(c.rbegin(), c.rend());
  FpElem naive2 = fast_.Zero();
  for (std::size_t i = 0; i < c.size(); ++i) {
    naive2 = fast_.Add(naive2, fast_.Mul(c[i], d[i]));
  }
  EXPECT_EQ(fast_.Dot(c, d), naive2);
  EXPECT_EQ(oracle_.Dot(c, d), naive2);
}

TEST_P(FieldKernelTest, DotAliasedInputs) {
  std::vector<FpElem> a;
  for (int i = 0; i < 17; ++i) a.push_back(fast_.Random(rng_));
  FpElem naive = fast_.Zero();
  for (const FpElem& x : a) naive = fast_.Add(naive, fast_.Sqr(x));
  // Same span passed as both arguments.
  EXPECT_EQ(fast_.Dot(a, a), naive);
  EXPECT_EQ(oracle_.Dot(a, a), naive);
  // DotAcc fed the same element object on both sides.
  DotAcc acc(fast_);
  for (const FpElem& x : a) acc.MulAdd(x, x);
  EXPECT_EQ(acc.Reduce(), naive);
}

TEST_P(FieldKernelTest, DotAccMatchesDotAndSurvivesReduceResetCycles) {
  std::vector<FpElem> a, b;
  for (int i = 0; i < 23; ++i) {
    a.push_back(fast_.Random(rng_));
    b.push_back(fast_.Random(rng_));
  }
  DotAcc acc(fast_);
  EXPECT_TRUE(fast_.IsZero(acc.Reduce()));  // empty accumulator
  for (std::size_t i = 0; i < a.size(); ++i) acc.MulAdd(a[i], b[i]);
  FpElem want = fast_.Dot(a, b);
  EXPECT_EQ(acc.Reduce(), want);
  // Reduce is non-destructive: a second call gives the same answer, and
  // further accumulation continues from the same state.
  EXPECT_EQ(acc.Reduce(), want);
  acc.MulAdd(a[0], b[0]);
  EXPECT_EQ(acc.Reduce(), fast_.Add(want, fast_.Mul(a[0], b[0])));
  acc.Reset();
  EXPECT_TRUE(fast_.IsZero(acc.Reduce()));
}

TEST_P(FieldKernelTest, DotPerformsExactlyOneReductionPerOutput) {
  std::vector<FpElem> a, b;
  for (int i = 0; i < 19; ++i) {
    a.push_back(fast_.Random(rng_));
    b.push_back(fast_.Random(rng_));
  }
  KernelStatsSnapshot before = GetKernelStats();
  FpElem r = fast_.Dot(a, b);
  KernelStatsSnapshot after = GetKernelStats();
  EXPECT_FALSE(fast_.IsZero(r));  // overwhelming probability
  EXPECT_EQ(after.dot_calls - before.dot_calls, 1u);
  EXPECT_EQ(after.dot_products - before.dot_products, a.size());
  EXPECT_EQ(after.dot_reductions - before.dot_reductions, 1u);
#ifndef NDEBUG
  // Debug builds also count Montgomery multiplies: the whole dot pays
  // exactly ONE (the 2^64 fixup) instead of one reduction per product.
  EXPECT_EQ(after.mont_muls - before.mont_muls, 1u);
#endif
}

INSTANTIATE_TEST_SUITE_P(AllPrimeSizes, FieldKernelTest,
                         ::testing::Values(256, 512, 1024, 2048));

// Non-standard widths must fall back to the generic path and still satisfy
// the lazy-reduction contract (the wide REDC is width-agnostic).
TEST(FieldKernelFallback, OddWidthUsesGenericAndDotStaysExact) {
  // A 192-bit odd modulus with a nonzero top limb (primality is not needed
  // for Montgomery multiplication or the dot identity).
  Bytes mod_be(24, 0xFF);  // 2^192 - 1 (odd)
  FpCtx ctx(mod_be);
  EXPECT_EQ(ctx.kernel_width(), 0u);
  EXPECT_EQ(ctx.limbs(), 3u);
  Rng rng(0xFA11BACC);
  std::vector<FpElem> a, b;
  for (int i = 0; i < 33; ++i) {
    a.push_back(ctx.Random(rng));
    b.push_back(ctx.Random(rng));
  }
  FpElem naive = ctx.Zero();
  for (std::size_t i = 0; i < a.size(); ++i) {
    naive = ctx.Add(naive, ctx.Mul(a[i], b[i]));
  }
  EXPECT_EQ(ctx.Dot(a, b), naive);
  for (const FpElem& x : a) EXPECT_EQ(ctx.Sqr(x), ctx.Mul(x, x));
}

}  // namespace
}  // namespace pisces::field
