// FaultPlan fabric: every knob (drop, duplicate, reorder, delay+jitter,
// partition, crash-at-Nth-message), per-endpoint fault counters, offline
// mailbox hygiene, and seed-determinism of the whole fault trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "net/sim_transport.h"

namespace pisces::net {
namespace {

Message Mk(std::uint32_t from, std::uint32_t to, std::uint8_t tag) {
  Message m;
  m.from = from;
  m.to = to;
  m.type = MsgType::kDeal;
  m.payload = Bytes{tag};
  return m;
}

std::vector<std::uint8_t> Drain(SimEndpoint* ep) {
  std::vector<std::uint8_t> tags;
  while (auto m = ep->Receive()) tags.push_back(m->payload.at(0));
  return tags;
}

TEST(FaultPlan, DropEverything) {
  SimNet net;
  auto* a = net.AddEndpoint(0);
  auto* b = net.AddEndpoint(1);
  FaultPlan plan;
  plan.seed = 7;
  plan.all_links.drop_prob = 1.0;
  net.SetFaultPlan(plan);

  for (std::uint8_t i = 0; i < 5; ++i) a->Send(Mk(0, 1, i));
  EXPECT_TRUE(Drain(b).empty());
  EXPECT_EQ(net.TotalDropped(), 5u);
  EXPECT_EQ(net.StatsFor(0).msgs_dropped, 5u);  // charged to the sender
  EXPECT_EQ(net.StatsFor(1).msgs_dropped, 0u);
}

TEST(FaultPlan, PerLinkOverrideBeatsDefault) {
  SimNet net;
  auto* a = net.AddEndpoint(0);
  net.AddEndpoint(1);
  auto* c = net.AddEndpoint(2);
  FaultPlan plan;
  plan.seed = 7;
  plan.all_links.drop_prob = 1.0;
  plan.links[{0, 2}] = LinkFault{};  // the 0->2 link is healthy
  net.SetFaultPlan(plan);

  a->Send(Mk(0, 1, 1));
  a->Send(Mk(0, 2, 2));
  EXPECT_EQ(net.PendingFor(1), 0u);
  EXPECT_EQ(Drain(c), (std::vector<std::uint8_t>{2}));
}

TEST(FaultPlan, DuplicateDeliversTwoCopies) {
  SimNet net;
  auto* a = net.AddEndpoint(0);
  auto* b = net.AddEndpoint(1);
  FaultPlan plan;
  plan.seed = 9;
  plan.all_links.dup_prob = 1.0;
  net.SetFaultPlan(plan);

  a->Send(Mk(0, 1, 42));
  EXPECT_EQ(Drain(b), (std::vector<std::uint8_t>{42, 42}));
  EXPECT_EQ(net.StatsFor(0).msgs_duplicated, 1u);
  EXPECT_EQ(net.TotalMessages(), 1u);  // one send, two deliveries
}

TEST(FaultPlan, ReorderShufflesQueueButLosesNothing) {
  SimNet net;
  auto* a = net.AddEndpoint(0);
  auto* b = net.AddEndpoint(1);
  FaultPlan plan;
  plan.seed = 11;
  plan.all_links.reorder_prob = 1.0;
  net.SetFaultPlan(plan);

  std::vector<std::uint8_t> sent;
  for (std::uint8_t i = 0; i < 8; ++i) {
    sent.push_back(i);
    a->Send(Mk(0, 1, i));
  }
  std::vector<std::uint8_t> got = Drain(b);
  EXPECT_NE(got, sent) << "seed 11 should shuffle an 8-message burst";
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, sent) << "reordering must not lose or duplicate messages";
  EXPECT_GT(net.StatsFor(0).msgs_reordered, 0u);
  EXPECT_EQ(net.TotalDropped(), 0u);
}

TEST(FaultPlan, FixedDelayMaturesAtExactSweep) {
  SimNet net;
  auto* a = net.AddEndpoint(0);
  auto* b = net.AddEndpoint(1);
  FaultPlan plan;
  plan.seed = 13;
  plan.all_links.delay_sweeps = 3;
  net.SetFaultPlan(plan);

  a->Send(Mk(0, 1, 5));
  EXPECT_EQ(net.PendingFor(1), 0u);
  EXPECT_EQ(net.StagedCount(), 1u);
  EXPECT_TRUE(net.AnyPending()) << "staged traffic must keep the pump alive";
  net.AdvanceSweep();
  net.AdvanceSweep();
  EXPECT_EQ(net.PendingFor(1), 0u) << "too early at sweep 2";
  net.AdvanceSweep();
  EXPECT_EQ(Drain(b), (std::vector<std::uint8_t>{5}));
  EXPECT_EQ(net.StagedCount(), 0u);
  EXPECT_EQ(net.StatsFor(0).msgs_delayed, 1u);
}

TEST(FaultPlan, JitteredDelayStaysWithinBound) {
  SimNet net;
  auto* a = net.AddEndpoint(0);
  auto* b = net.AddEndpoint(1);
  FaultPlan plan;
  plan.seed = 17;
  plan.all_links.delay_sweeps = 1;
  plan.all_links.delay_jitter = 3;  // total delay uniform in [1, 4]
  net.SetFaultPlan(plan);

  const std::size_t kMsgs = 40;
  for (std::size_t i = 0; i < kMsgs; ++i) {
    a->Send(Mk(0, 1, static_cast<std::uint8_t>(i)));
  }
  EXPECT_EQ(net.PendingFor(1), 0u) << "minimum delay is one sweep";
  EXPECT_EQ(net.StagedCount(), kMsgs);
  for (int s = 0; s < 4; ++s) net.AdvanceSweep();
  EXPECT_EQ(net.StagedCount(), 0u) << "maximum delay is four sweeps";
  EXPECT_EQ(Drain(b).size(), kMsgs);
  EXPECT_EQ(net.StatsFor(0).msgs_delayed, kMsgs);
}

TEST(FaultPlan, CrashAfterNthMessageIsOneShot) {
  SimNet net;
  auto* a = net.AddEndpoint(0);
  auto* b = net.AddEndpoint(1);
  FaultPlan plan;
  plan.seed = 19;
  plan.crash_after[0] = 3;
  net.SetFaultPlan(plan);

  a->Send(Mk(0, 1, 1));
  a->Send(Mk(0, 1, 2));
  EXPECT_FALSE(net.IsOffline(0));
  a->Send(Mk(0, 1, 3));  // dies mid-send: the 3rd message is lost with it
  EXPECT_TRUE(net.IsOffline(0));
  EXPECT_EQ(net.StatsFor(0).crashes, 1u);
  EXPECT_EQ(Drain(b), (std::vector<std::uint8_t>{1, 2}));

  // Reboot: the trigger must not re-fire (it is one-shot).
  net.SetOffline(0, false);
  a->Send(Mk(0, 1, 4));
  EXPECT_FALSE(net.IsOffline(0));
  EXPECT_EQ(net.StatsFor(0).crashes, 1u);
  EXPECT_EQ(Drain(b), (std::vector<std::uint8_t>{4}));
}

TEST(FaultPlan, PartitionDropsCrossingTrafficBothWays) {
  SimNet net;
  auto* a = net.AddEndpoint(0);
  auto* b = net.AddEndpoint(1);
  auto* c = net.AddEndpoint(2);
  const std::uint32_t island[] = {0, 1};
  net.PartitionOff(island);
  EXPECT_TRUE(net.PartitionActive());

  a->Send(Mk(0, 1, 1));  // inside the island: fine
  a->Send(Mk(0, 2, 2));  // island -> outside: dropped
  c->Send(Mk(2, 1, 3));  // outside -> island: dropped
  EXPECT_EQ(Drain(b), (std::vector<std::uint8_t>{1}));
  EXPECT_EQ(Drain(c).size(), 0u);
  EXPECT_EQ(net.TotalDropped(), 2u);

  net.ClearPartition();
  c->Send(Mk(2, 1, 4));
  EXPECT_EQ(Drain(b), (std::vector<std::uint8_t>{4}));
}

// Regression for the SetOffline asymmetry: going offline must purge the
// mailbox, in-flight staged traffic, and outbound sends; coming back online
// must start from a clean mailbox in every path.
TEST(FaultPlan, OfflinePurgesQueuedAndStagedTrafficInAllPaths) {
  SimNet net;
  auto* a = net.AddEndpoint(0);
  auto* b = net.AddEndpoint(1);
  auto* c = net.AddEndpoint(2);
  FaultPlan plan;
  plan.seed = 23;
  plan.links[{2, 1}] = LinkFault{.delay_sweeps = 5};
  net.SetFaultPlan(plan);

  a->Send(Mk(0, 1, 1));  // queued in 1's mailbox
  c->Send(Mk(2, 1, 2));  // staged in flight toward 1
  EXPECT_EQ(net.PendingFor(1), 1u);
  EXPECT_EQ(net.StagedCount(), 1u);

  net.SetOffline(1, true);
  EXPECT_EQ(net.PendingFor(1), 0u) << "queued traffic dies with the host";
  EXPECT_EQ(net.StagedCount(), 0u) << "staged traffic dies with the host";
  EXPECT_FALSE(net.AnyPending());

  a->Send(Mk(0, 1, 3));  // sent at a dead host: dropped at delivery
  b->Send(Mk(1, 0, 4));  // sent by the dead host: dropped at source
  EXPECT_EQ(Drain(a).size(), 0u);

  net.SetOffline(1, false);
  EXPECT_EQ(b->Receive(), std::nullopt) << "reboot starts from a clean mailbox";
  a->Send(Mk(0, 1, 5));
  EXPECT_EQ(Drain(b), (std::vector<std::uint8_t>{5}));
}

// One scripted run under a mixed fault plan, summarized as (delivery trace,
// fault counters).
struct Trace {
  std::vector<std::tuple<std::uint32_t, std::uint8_t>> delivered;
  std::vector<std::uint64_t> counters;
  bool operator==(const Trace&) const = default;
};

Trace RunScript(std::uint64_t fault_seed) {
  SimNet net;
  SimEndpoint* eps[3] = {net.AddEndpoint(0), net.AddEndpoint(1),
                         net.AddEndpoint(2)};
  FaultPlan plan;
  plan.seed = fault_seed;
  plan.all_links.drop_prob = 0.3;
  plan.all_links.dup_prob = 0.2;
  plan.all_links.reorder_prob = 0.3;
  plan.all_links.delay_jitter = 2;
  net.SetFaultPlan(plan);

  Trace trace;
  for (std::uint8_t i = 0; i < 60; ++i) {
    const std::uint32_t from = i % 3;
    eps[from]->Send(Mk(from, (from + 1) % 3, i));
    if (i % 5 == 4) net.AdvanceSweep();
  }
  for (int s = 0; s < 3; ++s) net.AdvanceSweep();
  for (std::uint32_t id = 0; id < 3; ++id) {
    for (std::uint8_t tag : Drain(eps[id])) trace.delivered.push_back({id, tag});
    const auto& st = net.StatsFor(id);
    trace.counters.insert(trace.counters.end(),
                          {st.msgs_sent, st.msgs_dropped, st.msgs_duplicated,
                           st.msgs_delayed, st.msgs_reordered});
  }
  trace.counters.push_back(net.TotalDropped());
  return trace;
}

TEST(FaultPlan, IdenticalSeedsReproduceTheFaultTraceExactly) {
  EXPECT_EQ(RunScript(101), RunScript(101));
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  EXPECT_NE(RunScript(101), RunScript(102));
}

}  // namespace
}  // namespace pisces::net
